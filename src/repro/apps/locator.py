"""The Vocal Personnel Locator (paper Section 8.4).

"This application combines voice recognition with location-awareness.
A user asks the computer to locate a person or an object using a
speech interface.  The application then queries the spatial database
for the required info, and replies verbally."

Speech recognition and synthesis are out of scope (and beside the
point); the locator consumes the *recognized utterance* as text and
produces the reply text that would be spoken — exactly the layer that
exercises MiddleWhere.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import PrivacyError, UnknownObjectError
from repro.service import LocationService

_WHERE_RE = re.compile(
    r"^\s*(?:where\s+is|where's|find|locate)\s+(?P<name>[\w\- ]+?)\s*\??\s*$",
    re.IGNORECASE)
_WHO_RE = re.compile(
    r"^\s*who\s+is\s+in\s+(?:the\s+)?(?P<region>[\w\-/ ]+?)\s*\??\s*$",
    re.IGNORECASE)
_NEAR_RE = re.compile(
    r"^\s*(?:what|which)\s+(?P<kind>\w+)\s+is\s+(?:nearest|closest)\s+"
    r"(?:to\s+)?(?P<name>[\w\- ]+?)\s*\??\s*$",
    re.IGNORECASE)


class VocalPersonnelLocator:
    """Text-in, text-out personnel/object locator."""

    def __init__(self, service: LocationService) -> None:
        self.service = service
        self.transcript: List[Tuple[str, str]] = []

    def ask(self, utterance: str,
            requester: Optional[str] = None) -> str:
        """Answer one recognized utterance."""
        reply = self._answer(utterance, requester)
        self.transcript.append((utterance, reply))
        return reply

    # ------------------------------------------------------------------

    def _answer(self, utterance: str, requester: Optional[str]) -> str:
        match = _WHERE_RE.match(utterance)
        if match:
            return self._where_is(match.group("name").strip(), requester)
        match = _WHO_RE.match(utterance)
        if match:
            return self._who_is_in(match.group("region").strip())
        match = _NEAR_RE.match(utterance)
        if match:
            return self._nearest(match.group("kind").strip(),
                                 match.group("name").strip(), requester)
        return ("Sorry, I can answer 'where is <person>', "
                "'who is in <region>' and "
                "'which <thing> is nearest <person>'.")

    def _where_is(self, name: str, requester: Optional[str]) -> str:
        try:
            estimate = self.service.locate(name, requester=requester)
        except UnknownObjectError:
            return f"I cannot locate {name} right now."
        except PrivacyError:
            return f"{name}'s location is private."
        place = estimate.symbolic or f"near {estimate.rect.center}"
        grade = estimate.bucket.value.replace("_", " ")
        return f"{name} is in {place} ({grade} confidence)."

    def _who_is_in(self, region: str) -> str:
        region_glob = self._resolve_region_name(region)
        if region_glob is None:
            return f"I do not know a region called {region}."
        people = self.service.objects_in_region(region_glob,
                                                min_confidence=0.5)
        if not people:
            return f"Nobody is in {region_glob} right now."
        names = ", ".join(object_id for object_id, _ in people)
        return f"In {region_glob}: {names}."

    def _nearest(self, kind: str, name: str,
                 requester: Optional[str]) -> str:
        type_map = {"display": "Display", "screen": "Display",
                    "workstation": "Workstation", "computer": "Workstation"}
        object_type = type_map.get(kind.lower())
        if object_type is None:
            return f"I cannot search for {kind}."
        try:
            found = self.service.nearest_entities(
                name, count=1, object_type=object_type)
        except (UnknownObjectError, PrivacyError):
            return f"I cannot locate {name} right now."
        if not found:
            return f"There is no {kind} near {name}."
        glob, distance = found[0]
        return f"The nearest {kind} to {name} is {glob}, {distance:.0f} feet away."

    def _resolve_region_name(self, region: str) -> Optional[str]:
        """Match a spoken region name against the symbolic lattice."""
        if self.service.regions.has(region):
            return region
        wanted = region.replace(" ", "").lower()
        for glob in self.service.regions.regions():
            leaf = glob.rsplit("/", 1)[-1].lower()
            if leaf == wanted:
                return glob
        return None
