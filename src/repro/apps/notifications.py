"""Location-Based Notifications (paper Section 8.3).

"Notifications are sent to people located in a particular geographical
boundary ... The notification may be a message like 'The store is
closing in five minutes'.  This application is implemented by setting
up location triggers in the target area, and maintaining a list of
users in the region."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Union

from repro.geometry import Rect
from repro.model import Glob
from repro.service import KIND_BOTH, LocationService


@dataclass
class DeliveredNotification:
    """One message that reached one person."""

    recipient: str
    message: str
    region: str
    time: float


class RegionNotifier:
    """Broadcast + geofence notifications for one region.

    Maintains the region's occupancy from enter/leave triggers, can
    broadcast to everyone currently inside, and can greet each person
    as they arrive.
    """

    def __init__(self, service: LocationService,
                 region: Union[Rect, Glob, str],
                 threshold: float = 0.5,
                 greeting: Optional[str] = None) -> None:
        self.service = service
        self.region = region
        self.region_name = str(region)
        self.greeting = greeting
        self.occupants: Set[str] = set()
        self.delivered: List[DeliveredNotification] = []
        self.subscription_id = service.subscribe(
            region, consumer=self._on_event, kind=KIND_BOTH,
            threshold=threshold)

    def _on_event(self, event: Dict[str, Any]) -> None:
        person = event["object_id"]
        if event["transition"] == "enter":
            self.occupants.add(person)
            if self.greeting is not None:
                self._deliver(person, self.greeting, event["time"])
        else:
            self.occupants.discard(person)

    def _deliver(self, recipient: str, message: str, time: float) -> None:
        self.delivered.append(DeliveredNotification(
            recipient, message, self.region_name, time))

    # ------------------------------------------------------------------

    def broadcast(self, message: str,
                  now: Optional[float] = None) -> List[str]:
        """Send a message to everyone currently in the region.

        Uses the live occupancy list (trigger-maintained) backed up by
        a region query, so people present before the notifier existed
        still hear the announcement.
        """
        at = now if now is not None else self.service.clock()
        present = set(self.occupants)
        for object_id, _ in self.service.objects_in_region(self.region, at):
            present.add(object_id)
        for person in sorted(present):
            self._deliver(person, message, at)
        return sorted(present)

    def close(self) -> None:
        """Tear down the geofence trigger."""
        self.service.unsubscribe(self.subscription_id)


class NotificationCenter:
    """Manages notifiers over many regions."""

    def __init__(self, service: LocationService) -> None:
        self.service = service
        self._notifiers: Dict[str, RegionNotifier] = {}

    def watch(self, region: Union[Rect, Glob, str],
              greeting: Optional[str] = None,
              threshold: float = 0.5) -> RegionNotifier:
        notifier = RegionNotifier(self.service, region, threshold, greeting)
        self._notifiers[notifier.subscription_id] = notifier
        return notifier

    def broadcast_all(self, message: str,
                      now: Optional[float] = None) -> int:
        """Broadcast to every watched region; returns deliveries."""
        count = 0
        for notifier in self._notifiers.values():
            count += len(notifier.broadcast(message, now))
        return count

    def close(self) -> None:
        for notifier in self._notifiers.values():
            notifier.close()
        self._notifiers.clear()
