"""User sessions for the Follow Me application (paper Section 8.1).

"We define a user session as a set of applications and files that a
user interacts with.  The session also includes state information and
customization options chosen by the user."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServiceError


@dataclass
class UserSession:
    """One user's migratable working state."""

    user_id: str
    applications: List[str] = field(default_factory=list)
    open_files: List[str] = field(default_factory=list)
    state: Dict[str, object] = field(default_factory=dict)
    host: Optional[str] = None          # GLOB of the display/workstation
    suspended: bool = True
    migrations: int = 0

    def suspend(self) -> None:
        """Park the session (user walked away from the display)."""
        self.suspended = True
        self.host = None

    def resume_at(self, host_glob: str) -> None:
        """Bring the session up on a display/workstation."""
        if not self.suspended and self.host == host_glob:
            return  # already there
        if not self.suspended:
            self.migrations += 1
        self.host = host_glob
        self.suspended = False


class SessionManager:
    """Holds every user's session."""

    def __init__(self) -> None:
        self._sessions: Dict[str, UserSession] = {}

    def create(self, user_id: str, applications: Optional[List[str]] = None,
               open_files: Optional[List[str]] = None) -> UserSession:
        if user_id in self._sessions:
            raise ServiceError(f"session for {user_id!r} already exists")
        session = UserSession(
            user_id=user_id,
            applications=list(applications or []),
            open_files=list(open_files or []),
        )
        self._sessions[user_id] = session
        return session

    def get(self, user_id: str) -> UserSession:
        session = self._sessions.get(user_id)
        if session is None:
            raise ServiceError(f"no session for {user_id!r}")
        return session

    def has(self, user_id: str) -> bool:
        return user_id in self._sessions

    def sessions(self) -> List[UserSession]:
        return list(self._sessions.values())
