"""The Follow Me application (paper Section 8.1).

"If a user moves out of the vicinity of the display he is using, the
application will automatically suspend the session.  When a user is
detected in the vicinity of any other display or workstation, the
session is automatically migrated and resumed at that machine."

Each user gets a *user proxy* that consults the Location Service,
finds a suitable nearby display (one whose usage region contains the
user), and migrates the session, honouring the user's privacy
preferences and a minimum confidence grade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.session import SessionManager, UserSession
from repro.core import ProbabilityBucket
from repro.errors import UnknownObjectError
from repro.service import LocationService


@dataclass
class FollowMePreferences:
    """Per-user knobs ("The user can customize the behavior ... to
    accommodate privacy preferences")."""

    enabled: bool = True
    min_bucket: ProbabilityBucket = ProbabilityBucket.MEDIUM
    host_types: Tuple[str, ...] = ("Display", "Workstation")


@dataclass
class MigrationEvent:
    """One observed session move, for logs and tests."""

    user_id: str
    time: float
    action: str              # "resume" | "suspend"
    host: Optional[str]


class UserProxy:
    """Manages one user's session against the Location Service."""

    def __init__(self, user_id: str, service: LocationService,
                 sessions: SessionManager,
                 preferences: Optional[FollowMePreferences] = None) -> None:
        self.user_id = user_id
        self.service = service
        self.sessions = sessions
        self.preferences = preferences or FollowMePreferences()
        if not sessions.has(user_id):
            sessions.create(user_id)
        self.events: List[MigrationEvent] = []

    @property
    def session(self) -> UserSession:
        return self.sessions.get(self.user_id)

    def _suitable_host(self, now: Optional[float]) -> Optional[str]:
        """The nearest display/workstation whose usage region holds the
        user with sufficient grade."""
        try:
            estimate = self.service.locate(self.user_id, now)
        except UnknownObjectError:
            return None
        if estimate.bucket < self.preferences.min_bucket:
            return None
        candidates: List[Tuple[float, str]] = []
        for host_type in self.preferences.host_types:
            for glob, distance in self.service.nearest_entities(
                    estimate.rect.center, count=3, object_type=host_type):
                relation = self.service.relations.usage(estimate, glob)
                if relation.holds:
                    candidates.append((distance, glob))
        if not candidates:
            return None
        candidates.sort()
        return candidates[0][1]

    def tick(self, now: Optional[float] = None) -> Optional[MigrationEvent]:
        """Re-evaluate the session placement; returns any change made."""
        if not self.preferences.enabled:
            return None
        at = now if now is not None else self.service.clock()
        host = self._suitable_host(at)
        session = self.session
        event: Optional[MigrationEvent] = None
        if host is None:
            if not session.suspended:
                session.suspend()
                event = MigrationEvent(self.user_id, at, "suspend", None)
        elif session.host != host or session.suspended:
            session.resume_at(host)
            event = MigrationEvent(self.user_id, at, "resume", host)
        if event is not None:
            self.events.append(event)
        return event


class FollowMeApp:
    """The whole application: one proxy per registered user."""

    def __init__(self, service: LocationService) -> None:
        self.service = service
        self.sessions = SessionManager()
        self._proxies: dict = {}

    def register_user(self, user_id: str,
                      preferences: Optional[FollowMePreferences] = None
                      ) -> UserProxy:
        proxy = UserProxy(user_id, self.service, self.sessions, preferences)
        self._proxies[user_id] = proxy
        return proxy

    def proxy(self, user_id: str) -> UserProxy:
        return self._proxies[user_id]

    def tick_all(self, now: Optional[float] = None) -> List[MigrationEvent]:
        """One Follow Me evaluation pass over every user."""
        events = []
        for proxy in self._proxies.values():
            event = proxy.tick(now)
            if event is not None:
                events.append(event)
        return events
