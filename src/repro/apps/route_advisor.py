"""Route advisor — the paper's route-finding application class.

"The various relations between regions are useful for a number of
applications such as route-finding applications" (Section 4.6.1).
The advisor locates a person, routes them to a destination region (or
to another person) over the navigation graph, and renders turn-by-turn
text, respecting restricted passages: without credentials it routes
around locked doors, and reports when no unrestricted path exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.errors import UnknownObjectError
from repro.model import Glob
from repro.reasoning import Route
from repro.service import LocationService


@dataclass
class Directions:
    """A computed set of directions."""

    origin: str
    destination: str
    distance_ft: float
    steps: List[str] = field(default_factory=list)
    uses_restricted_doors: bool = False

    def __str__(self) -> str:
        header = (f"{self.origin} -> {self.destination} "
                  f"({self.distance_ft:.0f} ft)")
        return "\n".join([header] + [f"  {i + 1}. {s}"
                                     for i, s in enumerate(self.steps)])


class RouteAdvisor:
    """Turn-by-turn guidance over the Location Service."""

    def __init__(self, service: LocationService) -> None:
        self.service = service

    # ------------------------------------------------------------------

    def _current_region(self, person: str) -> Optional[str]:
        try:
            estimate = self.service.locate(person)
        except UnknownObjectError:
            return None
        if estimate.symbolic is not None \
                and self.service.regions.has(estimate.symbolic):
            return estimate.symbolic
        region = self.service.regions.finest_region_containing_point(
            estimate.rect.center)
        return region

    def _render(self, route: Route, has_credentials: bool) -> Directions:
        world = self.service.world
        steps: List[str] = []
        uses_restricted = False
        for previous, current in zip(route.regions, route.regions[1:]):
            doors = world.doors_between(previous, current)
            if doors:
                door = doors[0]
                locked = door.kind.value == "restricted"
                uses_restricted = uses_restricted or locked
                door_name = str(door.glob).rsplit("/", 1)[-1]
                suffix = " (badge required)" if locked else ""
                steps.append(
                    f"go through {door_name}{suffix} into "
                    f"{current}")
            else:
                steps.append(f"continue into {current}")
        return Directions(
            origin=route.regions[0],
            destination=route.regions[-1],
            distance_ft=route.distance,
            steps=steps,
            uses_restricted_doors=uses_restricted,
        )

    # ------------------------------------------------------------------

    def directions_between(self, origin: Union[Glob, str],
                           destination: Union[Glob, str],
                           has_credentials: bool = False
                           ) -> Optional[Directions]:
        """Directions between two regions, or ``None`` if unreachable.

        Without credentials restricted doors are avoided entirely; the
        advisor prefers a longer open path over a short locked one.
        """
        route = self.service.navigation.route(
            str(origin), str(destination),
            allow_restricted=has_credentials)
        if route is None:
            return None
        return self._render(route, has_credentials)

    def directions_for(self, person: str,
                       destination: Union[Glob, str],
                       has_credentials: bool = False
                       ) -> Optional[Directions]:
        """Directions from a person's current location to a region."""
        origin = self._current_region(person)
        if origin is None:
            return None
        if origin == str(destination):
            return Directions(origin=origin,
                              destination=str(destination),
                              distance_ft=0.0,
                              steps=["you are already there"])
        return self.directions_between(origin, destination,
                                       has_credentials)

    def guide_to_person(self, seeker: str, target: str,
                        has_credentials: bool = False
                        ) -> Optional[Directions]:
        """Directions from one tracked person to another."""
        destination = self._current_region(target)
        if destination is None:
            return None
        return self.directions_for(seeker, destination, has_credentials)

    def advise(self, person: str, destination: Union[Glob, str]) -> str:
        """A complete textual answer, including the locked-door case."""
        open_route = self.directions_for(person, destination,
                                         has_credentials=False)
        if open_route is not None:
            return str(open_route)
        badge_route = self.directions_for(person, destination,
                                          has_credentials=True)
        if badge_route is not None:
            return ("no unrestricted path; with your badge:\n"
                    + str(badge_route))
        return (f"I cannot find a route to {destination} "
                f"(are you locatable?)")
