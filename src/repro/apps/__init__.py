"""Location-aware applications (paper Section 8).

The four applications the paper built on MiddleWhere: Follow Me
session migration, Anywhere Instant Messaging, Location-Based
Notifications and the Vocal Personnel Locator.  All consume only the
Location Service's public API — they are the proof that the
middleware's abstractions suffice.
"""

from repro.apps.follow_me import (
    FollowMeApp,
    FollowMePreferences,
    MigrationEvent,
    UserProxy,
)
from repro.apps.locator import VocalPersonnelLocator
from repro.apps.messaging import (
    AnywhereIM,
    Delivery,
    Message,
    MessagingPreferences,
)
from repro.apps.notifications import (
    DeliveredNotification,
    NotificationCenter,
    RegionNotifier,
)
from repro.apps.route_advisor import Directions, RouteAdvisor
from repro.apps.session import SessionManager, UserSession

__all__ = [
    "AnywhereIM",
    "DeliveredNotification",
    "Delivery",
    "Directions",
    "RouteAdvisor",
    "FollowMeApp",
    "FollowMePreferences",
    "Message",
    "MessagingPreferences",
    "MigrationEvent",
    "NotificationCenter",
    "RegionNotifier",
    "SessionManager",
    "UserProxy",
    "UserSession",
    "VocalPersonnelLocator",
]
