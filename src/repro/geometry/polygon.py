"""Simple polygons for exact region boundaries.

The spatial database stores rooms and corridors as polygons (Table 1)
but reasons with their minimum bounding rectangles; "once a certain
condition is satisfied by a MBR, more accurate processing of the
operation is performed taking the actual region boundaries"
(Section 5.1).  This module supplies that accurate processing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

_EPS = 1e-9


@dataclass(frozen=True)
class Polygon:
    """An immutable simple polygon given by its vertices in order.

    Vertices may wind in either direction; ``area`` is always positive.
    The polygon is validated to have at least three non-collinear
    vertices.  Self-intersection is not checked (blueprint data is
    assumed sane), matching the paper's trust in building blueprints.
    """

    vertices: Tuple[Point, ...]
    _mbr: Rect = field(init=False, repr=False, compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __init__(self, vertices: Sequence[Point]) -> None:
        pts = tuple(vertices)
        if len(pts) < 3:
            raise GeometryError(f"polygon needs >= 3 vertices, got {len(pts)}")
        object.__setattr__(self, "vertices", pts)
        object.__setattr__(self, "_mbr", Rect.from_points(pts))
        if self.signed_area() == 0.0:
            raise GeometryError("polygon vertices are collinear")

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """The polygon with the same boundary as ``rect``."""
        return cls(rect.corners)

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """A regular polygon, used to approximate circular sensor regions."""
        if sides < 3:
            raise GeometryError("a regular polygon needs >= 3 sides")
        if radius <= 0:
            raise GeometryError("radius must be positive")
        step = 2.0 * math.pi / sides
        return cls(
            [
                Point(center.x + radius * math.cos(i * step),
                      center.y + radius * math.sin(i * step))
                for i in range(sides)
            ]
        )

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    def signed_area(self) -> float:
        """Shoelace area; positive when vertices wind counter-clockwise."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    @property
    def area(self) -> float:
        return abs(self.signed_area())

    @property
    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        sa = self.signed_area()
        cx = 0.0
        cy = 0.0
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            cross = a.x * b.y - b.x * a.y
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        return Point(cx / (6.0 * sa), cy / (6.0 * sa))

    @property
    def mbr(self) -> Rect:
        """The polygon's minimum bounding rectangle."""
        return self._mbr

    @property
    def edges(self) -> List[Segment]:
        """The boundary segments in vertex order."""
        n = len(self.vertices)
        return [
            Segment(self.vertices[i], self.vertices[(i + 1) % n])
            for i in range(n)
        ]

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Ray-casting point-in-polygon; boundary points count as inside."""
        if not self._mbr.contains_point(p):
            return False
        n = len(self.vertices)
        inside = False
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            # Boundary check first: a point on an edge is contained.
            if Segment(a, b).contains_point(p):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def contains_polygon(self, other: "Polygon") -> bool:
        """Whether ``other`` lies fully inside this polygon (boundary
        contact allowed — a room sharing a wall with its floor is still
        contained).

        Sufficient for building layouts: every vertex and edge midpoint
        of ``other`` inside, and no edge of ``other`` properly crossing
        this polygon's boundary (shared collinear walls do not count).
        """
        if not self._mbr.contains_rect(other._mbr):
            return False
        if not all(self.contains_point(v) for v in other.vertices):
            return False
        for edge in other.edges:
            if not self.contains_point(edge.midpoint):
                return False
        for e1 in self.edges:
            for e2 in other.edges:
                if e1.crosses_properly(e2):
                    return False
        return True

    def intersects_polygon(self, other: "Polygon") -> bool:
        """Whether the two polygons share any point."""
        if not self._mbr.intersects(other._mbr):
            return False
        if any(other.contains_point(v) for v in self.vertices):
            return True
        if any(self.contains_point(v) for v in other.vertices):
            return True
        return self._edges_cross(other)

    def _edges_cross(self, other: "Polygon") -> bool:
        for e1 in self.edges:
            for e2 in other.edges:
                if e1.intersects(e2):
                    return True
        return False

    def shares_edge_with(self, other: "Polygon", tolerance: float = 1e-9) -> bool:
        """Whether any boundary portion is common (wall between rooms)."""
        for e1 in self.edges:
            for e2 in other.edges:
                # Parallel, collinear and overlapping in 1D?
                if _collinear_overlap(e1, e2, tolerance):
                    return True
        return False

    # ------------------------------------------------------------------
    # Clipping
    # ------------------------------------------------------------------

    def clipped_to_rect(self, rect: Rect) -> "Polygon | None":
        """Sutherland–Hodgman clip of this polygon against a rectangle.

        Returns ``None`` when nothing remains.  Used by the MBR-vs-exact
        ablation to compute exact intersection areas.
        """
        pts: List[Point] = list(self.vertices)
        # Clip against each of the four half-planes in turn.
        for inside, intersect in (
            (lambda p: p.x >= rect.min_x - _EPS,
             lambda a, b: _x_cross(a, b, rect.min_x)),
            (lambda p: p.x <= rect.max_x + _EPS,
             lambda a, b: _x_cross(a, b, rect.max_x)),
            (lambda p: p.y >= rect.min_y - _EPS,
             lambda a, b: _y_cross(a, b, rect.min_y)),
            (lambda p: p.y <= rect.max_y + _EPS,
             lambda a, b: _y_cross(a, b, rect.max_y)),
        ):
            if not pts:
                return None
            out: List[Point] = []
            n = len(pts)
            for i in range(n):
                cur = pts[i]
                prev = pts[i - 1]
                cur_in = inside(cur)
                prev_in = inside(prev)
                if cur_in:
                    if not prev_in:
                        out.append(intersect(prev, cur))
                    out.append(cur)
                elif prev_in:
                    out.append(intersect(prev, cur))
            pts = _dedupe(out)
        if len(pts) < 3:
            return None
        try:
            return Polygon(pts)
        except GeometryError:
            return None

    def intersection_area_with_rect(self, rect: Rect) -> float:
        """Exact area of ``polygon ∩ rect``."""
        clipped = self.clipped_to_rect(rect)
        return clipped.area if clipped is not None else 0.0

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices, area={self.area:g})"


def _x_cross(a: Point, b: Point, x: float) -> Point:
    t = (x - a.x) / (b.x - a.x)
    return Point(x, a.y + t * (b.y - a.y))


def _y_cross(a: Point, b: Point, y: float) -> Point:
    t = (y - a.y) / (b.y - a.y)
    return Point(a.x + t * (b.x - a.x), y)


def _dedupe(pts: List[Point]) -> List[Point]:
    out: List[Point] = []
    for p in pts:
        if not out or not out[-1].almost_equals(p, 1e-9):
            out.append(p)
    if len(out) > 1 and out[0].almost_equals(out[-1], 1e-9):
        out.pop()
    return out


def _collinear_overlap(e1: Segment, e2: Segment, tolerance: float) -> bool:
    """Whether two segments are collinear and overlap over a positive length."""
    d1x = e1.end.x - e1.start.x
    d1y = e1.end.y - e1.start.y
    d2x = e2.end.x - e2.start.x
    d2y = e2.end.y - e2.start.y
    if abs(d1x * d2y - d1y * d2x) > tolerance:
        return False  # not parallel
    # e2.start must lie on e1's supporting line.
    ox = e2.start.x - e1.start.x
    oy = e2.start.y - e1.start.y
    if abs(d1x * oy - d1y * ox) > tolerance * max(1.0, e1.length):
        return False  # parallel but offset
    # Project both segments on e1's direction and test 1D interval overlap.
    denom = d1x * d1x + d1y * d1y
    t0 = 0.0
    t1 = 1.0
    s0 = (ox * d1x + oy * d1y) / denom
    s1 = ((e2.end.x - e1.start.x) * d1x + (e2.end.y - e1.start.y) * d1y) / denom
    lo, hi = min(s0, s1), max(s0, s1)
    overlap = min(t1, hi) - max(t0, lo)
    return overlap > tolerance
