"""2D/3D points used throughout the location model.

MiddleWhere reasons about floor plans, so most geometry is planar; the
``z`` coordinate carries height (e.g. which floor a badge is on) and is
preserved through transforms but ignored by area computations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable point with optional height.

    >>> Point(1.0, 2.0).distance_to(Point(4.0, 6.0))
    5.0
    """

    x: float
    y: float
    z: float = 0.0

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    @property
    def xy(self) -> Tuple[float, float]:
        """The planar coordinates as a tuple."""
        return (self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Planar Euclidean distance to ``other`` (height ignored)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_to_3d(self, other: "Point") -> float:
        """Full 3D Euclidean distance to ``other``."""
        return math.sqrt(
            (self.x - other.x) ** 2
            + (self.y - other.y) ** 2
            + (self.z - other.z) ** 2
        )

    def translated(self, dx: float, dy: float, dz: float = 0.0) -> "Point":
        """A copy of this point moved by the given offsets."""
        return Point(self.x + dx, self.y + dy, self.z + dz)

    def scaled(self, sx: float, sy: float) -> "Point":
        """A copy of this point with planar coordinates scaled."""
        return Point(self.x * sx, self.y * sy, self.z)

    def rotated(self, angle_radians: float) -> "Point":
        """A copy rotated about the origin in the plane."""
        c = math.cos(angle_radians)
        s = math.sin(angle_radians)
        return Point(self.x * c - self.y * s, self.x * s + self.y * c, self.z)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between this point and ``other``."""
        return Point(
            (self.x + other.x) / 2.0,
            (self.y + other.y) / 2.0,
            (self.z + other.z) / 2.0,
        )

    def almost_equals(self, other: "Point", tolerance: float = 1e-9) -> bool:
        """Whether the two points coincide within ``tolerance``."""
        return (
            abs(self.x - other.x) <= tolerance
            and abs(self.y - other.y) <= tolerance
            and abs(self.z - other.z) <= tolerance
        )

    def __repr__(self) -> str:
        if self.z:
            return f"Point({self.x:g}, {self.y:g}, {self.z:g})"
        return f"Point({self.x:g}, {self.y:g})"
