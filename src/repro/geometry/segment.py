"""Line segments: door sills, walls, and symbolic line locations."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import GeometryError
from repro.geometry.point import Point

_EPS = 1e-12


def _cross(ox: float, oy: float, ax: float, ay: float, bx: float, by: float) -> float:
    """Cross product of OA x OB; sign gives the turn direction."""
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


@dataclass(frozen=True)
class Segment:
    """An immutable planar line segment between two points.

    Used by the world model for doors and non-enclosing walls, and by
    the passage reasoner to test whether a door lies on a shared wall.
    """

    start: Point
    end: Point

    def __post_init__(self) -> None:
        if self.start.almost_equals(self.end):
            raise GeometryError(f"degenerate segment at {self.start}")

    @property
    def length(self) -> float:
        """Planar length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """The point halfway along the segment."""
        return self.start.midpoint(self.end)

    def contains_point(self, p: Point, tolerance: float = 1e-9) -> bool:
        """Whether ``p`` lies on the segment (within ``tolerance``)."""
        cross = _cross(self.start.x, self.start.y, self.end.x, self.end.y, p.x, p.y)
        if abs(cross) > tolerance * max(1.0, self.length):
            return False
        dot = (p.x - self.start.x) * (self.end.x - self.start.x) + (
            p.y - self.start.y
        ) * (self.end.y - self.start.y)
        if dot < -tolerance:
            return False
        return dot <= self.length**2 + tolerance

    def distance_to_point(self, p: Point) -> float:
        """Shortest planar distance from ``p`` to the segment."""
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        denom = dx * dx + dy * dy
        t = ((p.x - self.start.x) * dx + (p.y - self.start.y) * dy) / denom
        t = max(0.0, min(1.0, t))
        closest = Point(self.start.x + t * dx, self.start.y + t * dy)
        return p.distance_to(closest)

    def intersects(self, other: "Segment") -> bool:
        """Whether the two segments intersect (including touching)."""
        d1 = _cross(other.start.x, other.start.y, other.end.x, other.end.y,
                    self.start.x, self.start.y)
        d2 = _cross(other.start.x, other.start.y, other.end.x, other.end.y,
                    self.end.x, self.end.y)
        d3 = _cross(self.start.x, self.start.y, self.end.x, self.end.y,
                    other.start.x, other.start.y)
        d4 = _cross(self.start.x, self.start.y, self.end.x, self.end.y,
                    other.end.x, other.end.y)
        if ((d1 > _EPS and d2 < -_EPS) or (d1 < -_EPS and d2 > _EPS)) and (
            (d3 > _EPS and d4 < -_EPS) or (d3 < -_EPS and d4 > _EPS)
        ):
            return True
        # Collinear / touching cases.
        if abs(d1) <= _EPS and other.contains_point(self.start):
            return True
        if abs(d2) <= _EPS and other.contains_point(self.end):
            return True
        if abs(d3) <= _EPS and self.contains_point(other.start):
            return True
        if abs(d4) <= _EPS and self.contains_point(other.end):
            return True
        return False

    def crosses_properly(self, other: "Segment") -> bool:
        """Whether the segments cross transversally at interior points.

        Touching endpoints and collinear overlap do NOT count — this is
        the test for a boundary genuinely cutting through another
        region's boundary, as opposed to two rooms sharing a wall.
        """
        d1 = _cross(other.start.x, other.start.y, other.end.x, other.end.y,
                    self.start.x, self.start.y)
        d2 = _cross(other.start.x, other.start.y, other.end.x, other.end.y,
                    self.end.x, self.end.y)
        d3 = _cross(self.start.x, self.start.y, self.end.x, self.end.y,
                    other.start.x, other.start.y)
        d4 = _cross(self.start.x, self.start.y, self.end.x, self.end.y,
                    other.end.x, other.end.y)
        return ((d1 > _EPS and d2 < -_EPS) or (d1 < -_EPS and d2 > _EPS)) \
            and ((d3 > _EPS and d4 < -_EPS) or (d3 < -_EPS and d4 > _EPS))

    def intersection_point(self, other: "Segment") -> Optional[Point]:
        """The single crossing point of two non-parallel segments.

        Returns ``None`` when the segments do not cross or are parallel
        (including collinear overlap, which has no unique point).
        """
        x1, y1 = self.start.x, self.start.y
        x2, y2 = self.end.x, self.end.y
        x3, y3 = other.start.x, other.start.y
        x4, y4 = other.end.x, other.end.y
        denom = (x1 - x2) * (y3 - y4) - (y1 - y2) * (x3 - x4)
        if abs(denom) < _EPS:
            return None
        t = ((x1 - x3) * (y3 - y4) - (y1 - y3) * (x3 - x4)) / denom
        u = ((x1 - x3) * (y1 - y2) - (y1 - y3) * (x1 - x2)) / denom
        if -_EPS <= t <= 1 + _EPS and -_EPS <= u <= 1 + _EPS:
            return Point(x1 + t * (x2 - x1), y1 + t * (y2 - y1))
        return None

    def angle(self) -> float:
        """Orientation of the segment in radians, in ``[-pi, pi]``."""
        return math.atan2(self.end.y - self.start.y, self.end.x - self.start.x)

    def translated(self, dx: float, dy: float) -> "Segment":
        """A copy of the segment moved by the given offsets."""
        return Segment(self.start.translated(dx, dy), self.end.translated(dx, dy))
