"""Planar geometry substrate: points, segments, rectangles and polygons.

Everything the spatial database and fusion engine need is built on the
four types exported here.  Rectangles are the central type — MiddleWhere
approximates all regions with minimum bounding rectangles (Section 4.1.2
of the paper) — while polygons provide the "more accurate processing"
pass described in Section 5.1.
"""

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect, mbr_of_rects, union_area
from repro.geometry.segment import Segment

__all__ = [
    "Point",
    "Polygon",
    "Rect",
    "Segment",
    "mbr_of_rects",
    "union_area",
]
