"""Axis-aligned rectangles — the minimum-bounding-rectangle (MBR) workhorse.

The paper approximates every sensor region and physical region with a
minimum bounding rectangle because "operations like finding intersection
regions, area and containment properties are very easy and fast to
perform on rectangles" (Section 4.1.2).  This module is therefore the
hottest geometry code in the system: the fusion lattice, the R-tree and
the trigger engine all operate on :class:`Rect`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """An immutable axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate (zero-width or zero-height) rectangles are allowed — a
    point sensor reading is a zero-area rectangle until it is padded by
    the sensor's resolution — but inverted bounds are rejected.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"inverted rectangle bounds: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """The minimum bounding rectangle of a set of points."""
        pts = list(points)
        if not pts:
            raise GeometryError("cannot bound an empty point set")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    @classmethod
    def from_center(cls, center: Point, half_width: float,
                    half_height: Optional[float] = None) -> "Rect":
        """A rectangle centred at ``center``.

        With only ``half_width`` given, the rectangle is the square MBR
        of a circle of that radius — exactly how coordinate sensor
        readings with an error radius are rectangle-ized (Section 4.1.2).
        """
        if half_height is None:
            half_height = half_width
        if half_width < 0 or half_height < 0:
            raise GeometryError("negative rectangle extent")
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0,
                     (self.min_y + self.max_y) / 2.0)

    @property
    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order from the minimum corner."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def is_degenerate(self, tolerance: float = 0.0) -> bool:
        """Whether the rectangle has (near-)zero area."""
        return self.width <= tolerance or self.height <= tolerance

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Whether ``p`` lies inside or on the boundary."""
        return (self.min_x <= p.x <= self.max_x
                and self.min_y <= p.y <= self.max_y)

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies fully inside (or equals) this rectangle."""
        return (self.min_x <= other.min_x and other.max_x <= self.max_x
                and self.min_y <= other.min_y and other.max_y <= self.max_y)

    def contains_rect_strictly(self, other: "Rect") -> bool:
        """Containment with no shared boundary (RCC NTPP on rectangles)."""
        return (self.min_x < other.min_x and other.max_x < self.max_x
                and self.min_y < other.min_y and other.max_y < self.max_y)

    def intersects(self, other: "Rect") -> bool:
        """Whether the rectangles share any point (boundaries included)."""
        return (self.min_x <= other.max_x and other.min_x <= self.max_x
                and self.min_y <= other.max_y and other.min_y <= self.max_y)

    def overlaps(self, other: "Rect") -> bool:
        """Whether the rectangles share interior area (not just an edge)."""
        return (self.min_x < other.max_x and other.min_x < self.max_x
                and self.min_y < other.max_y and other.min_y < self.max_y)

    def touches(self, other: "Rect") -> bool:
        """Whether the rectangles share only boundary (RCC EC)."""
        return self.intersects(other) and not self.overlaps(other)

    def is_disjoint(self, other: "Rect") -> bool:
        """Whether the rectangles share no point at all (RCC DC)."""
        return not self.intersects(other)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap; the ``int()`` function of the paper's Eq. (7)."""
        w = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        h = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def union_mbr(self, other: "Rect") -> "Rect":
        """The minimum bounding rectangle of both rectangles."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "Rect":
        """A copy grown by ``margin`` on every side (shrunk if negative)."""
        r = Rect.__new__(Rect)
        object.__setattr__(r, "min_x", self.min_x - margin)
        object.__setattr__(r, "min_y", self.min_y - margin)
        object.__setattr__(r, "max_x", self.max_x + margin)
        object.__setattr__(r, "max_y", self.max_y + margin)
        if r.min_x > r.max_x or r.min_y > r.max_y:
            raise GeometryError(f"margin {margin} collapses rectangle {self}")
        return r

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy moved by the given offsets."""
        return Rect(self.min_x + dx, self.min_y + dy,
                    self.max_x + dx, self.max_y + dy)

    def clipped_to(self, bounds: "Rect") -> Optional["Rect"]:
        """This rectangle clipped to ``bounds`` (``None`` if outside)."""
        return self.intersection(bounds)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def distance_to_point(self, p: Point) -> float:
        """Shortest distance from ``p`` to the rectangle (0 if inside)."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def distance_to_rect(self, other: "Rect") -> float:
        """Shortest gap between the rectangles (0 when they intersect)."""
        dx = max(self.min_x - other.max_x, 0.0, other.min_x - self.max_x)
        dy = max(self.min_y - other.max_y, 0.0, other.min_y - self.max_y)
        return math.hypot(dx, dy)

    def center_distance(self, other: "Rect") -> float:
        """Euclidean distance between the rectangle centers.

        This is the paper's "Euclidean distance" between regions
        (Section 4.6.1: "shortest straight line distance between the
        centers of the regions").
        """
        return self.center.distance_to(other.center)

    def almost_equals(self, other: "Rect", tolerance: float = 1e-9) -> bool:
        """Whether the rectangles coincide within ``tolerance``."""
        return (abs(self.min_x - other.min_x) <= tolerance
                and abs(self.min_y - other.min_y) <= tolerance
                and abs(self.max_x - other.max_x) <= tolerance
                and abs(self.max_y - other.max_y) <= tolerance)

    def __repr__(self) -> str:
        return (f"Rect({self.min_x:g}, {self.min_y:g}, "
                f"{self.max_x:g}, {self.max_y:g})")


def mbr_of_rects(rects: Iterable[Rect]) -> Rect:
    """The minimum bounding rectangle of a collection of rectangles."""
    rect_list = list(rects)
    if not rect_list:
        raise GeometryError("cannot bound an empty rectangle set")
    result = rect_list[0]
    for r in rect_list[1:]:
        result = result.union_mbr(r)
    return result


def union_area(rects: List[Rect]) -> float:
    """Exact area of the union of rectangles (coordinate compression).

    Used by the fusion ablations to measure how much the lattice's
    pairwise-intersection approximation over-counts. O(n^2 log n).
    """
    if not rects:
        return 0.0
    xs = sorted({r.min_x for r in rects} | {r.max_x for r in rects})
    total = 0.0
    for left, right in zip(xs, xs[1:]):
        if right <= left:
            continue
        # Collect y-intervals of rectangles spanning this x-slab.
        intervals = sorted(
            (r.min_y, r.max_y)
            for r in rects
            if r.min_x <= left and r.max_x >= right
        )
        covered = 0.0
        cur_lo: Optional[float] = None
        cur_hi = 0.0
        for lo, hi in intervals:
            if cur_lo is None:
                cur_lo, cur_hi = lo, hi
            elif lo <= cur_hi:
                cur_hi = max(cur_hi, hi)
            else:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
        if cur_lo is not None:
            covered += cur_hi - cur_lo
        total += covered * (right - left)
    return total
