"""MiddleWhere — a middleware for location awareness.

A full reproduction of *MiddleWhere: A Middleware for Location
Awareness in Ubiquitous Computing Applications* (Ranganathan et al.,
MIDDLEWARE 2004): probabilistic multi-sensor location fusion over a
spatial database, with a hybrid symbolic/coordinate location model,
spatial relationship reasoning, push/pull application interfaces, a
distributed object broker, simulated sensor technologies and the
paper's example applications.

Quickstart::

    from repro import Scenario

    scenario = Scenario(seed=7).standard_deployment()
    scenario.add_people(3)
    scenario.run(60)
    estimate = scenario.service.locate("person-1")
    print(estimate.symbolic, estimate.bucket.value)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — sensor error model, temporal degradation, the
  rectangle lattice and the Bayesian fusion equations (the paper's
  primary contribution).
* :mod:`repro.geometry`, :mod:`repro.model`, :mod:`repro.spatialdb` —
  the geometric substrate, GLOB/coordinate-frame location model and
  the spatial database with triggers.
* :mod:`repro.reasoning` — RCC-8 + passage relations, navigation
  graph, mini-Prolog rule engine, probabilistic relations.
* :mod:`repro.orb` — the CORBA-role object request broker.
* :mod:`repro.sensors` — plug-and-play adapters for the paper's
  technologies.
* :mod:`repro.pipeline` — the streaming ingestion pipeline: batched,
  back-pressured reading intake with worker-pool fusion and a
  dead-letter queue.
* :mod:`repro.faults` — seeded, deterministic fault injection and the
  chaos-test invariants for the sensing→fusion→notify path.
* :mod:`repro.service` — the Location Service (queries,
  subscriptions, privacy, symbolic regions).
* :mod:`repro.shard` — multiprocess scale-out: the tracked-object
  population partitioned across N shard processes behind a router
  over the ORB's TCP transport.
* :mod:`repro.sim` — simulated buildings, people and sensors.
* :mod:`repro.apps` — Follow Me, Anywhere IM, notifications, the
  vocal locator.
"""

from repro.core import (
    FusionEngine,
    FusionResult,
    LocationEstimate,
    ProbabilityBucket,
    ProbabilityClassifier,
    SensorSpec,
)
from repro.faults import FaultPlan, FaultReport
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import Glob, WorldModel
from repro.orb import NamingService, Orb
from repro.pipeline import (
    LocationPipeline,
    PipelineConfig,
    PipelineReading,
    PipelineStats,
)
from repro.service import (
    LocationHistory,
    LocationService,
    PrivacyPolicy,
    publish_service,
)
from repro.shard import ShardCluster, ShardRouter
from repro.sim import (
    Scenario,
    SimClock,
    campus_world,
    paper_floor,
    siebel_building,
    siebel_floor,
)
from repro.spatialdb import SpatialDatabase

__version__ = "1.0.0"

__all__ = [
    "FaultPlan",
    "FaultReport",
    "FusionEngine",
    "FusionResult",
    "Glob",
    "LocationEstimate",
    "LocationHistory",
    "LocationPipeline",
    "LocationService",
    "NamingService",
    "Orb",
    "PipelineConfig",
    "PipelineReading",
    "PipelineStats",
    "Point",
    "Polygon",
    "PrivacyPolicy",
    "ProbabilityBucket",
    "ProbabilityClassifier",
    "Rect",
    "Scenario",
    "Segment",
    "SensorSpec",
    "SimClock",
    "SpatialDatabase",
    "WorldModel",
    "__version__",
    "campus_world",
    "paper_floor",
    "publish_service",
    "siebel_building",
    "siebel_floor",
]
