"""One shard process: a complete MiddleWhere engine over the ORB.

A shard owns its slice of the tracked-object population — spatial
database, fusion engine, ingestion pipeline, trigger set and
(optionally) its own write-ahead log — and exposes a wire-narrowed
servant over the ORB's TCP transport.  Every shard loads the FULL
world model (the symbolic lattice, classifier inputs and universe
rectangle must match the single-process reference exactly for fused
results to be bit-identical); only the mobile objects are partitioned.

:func:`shard_worker_main` is the ``multiprocessing`` spawn target: it
builds the engine from a plain-dict config, reports its bound TCP
port back through the pipe, and serves until ``shutdown`` arrives.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Any, Dict, List, Optional

from repro.core import ProbabilityBucket
from repro.errors import ServiceError
from repro.geometry import Point, Rect
from repro.model.serialize import world_from_json
from repro.orb import Orb
from repro.pipeline import LocationPipeline, PipelineConfig, PipelineReading
from repro.reasoning.incremental import LocationUpdate
from repro.service import LocationService
from repro.service.subscriptions import KIND_ENTER, Subscription
from repro.spatialdb import SpatialDatabase
from repro.storage.records import decode_spec

# Every shard registers its servant under this object id; references
# differ only in the port: tcp://127.0.0.1:<port>/shard.
SHARD_OBJECT_ID = "shard"


def reading_to_wire(reading: PipelineReading) -> Dict[str, Any]:
    """A :class:`PipelineReading` as a codec-safe dict."""
    return {
        "sensor_id": reading.sensor_id,
        "glob_prefix": reading.glob_prefix,
        "sensor_type": reading.sensor_type,
        "object_id": reading.object_id,
        "rect": reading.rect,
        "detection_time": reading.detection_time,
        "location": reading.location,
        "detection_radius": reading.detection_radius,
    }


def reading_from_wire(data: Dict[str, Any]) -> PipelineReading:
    return PipelineReading(
        sensor_id=data["sensor_id"],
        glob_prefix=data["glob_prefix"],
        sensor_type=data["sensor_type"],
        object_id=data["object_id"],
        rect=data["rect"],
        detection_time=data["detection_time"],
        location=data.get("location"),
        detection_radius=data.get("detection_radius", 0.0),
    )


class ShardServant:
    """The remote face of one shard.

    Config keys (all plain JSON-able values so the dict survives the
    spawn pickle):

    * ``world_json`` — the full world model, serialized.
    * ``shard_index`` / ``num_shards`` — identity, for stats.
    * ``pipeline`` — :class:`PipelineConfig` overrides
      (``workers``, ``max_batch``, ``max_wait``, ``queue_capacity``,
      ``overflow_policy``).
    * ``fusion_cache_capacity`` — per-shard fusion memo size.
    * ``wal_dir`` — when set, attach a
      :class:`repro.storage.DurabilityManager` journaling into it.
    * ``durability_mode`` — ``"buffered"`` | ``"strict"``.
    * ``recover_from`` — a WAL directory from a previous incarnation;
      the shard rebuilds its database from it before serving.
    * ``wire_codec`` — preferred ORB codec (``"binary"`` | ``"json"``),
      consumed by :func:`shard_worker_main` when it builds the Orb.
    """

    ORB_EXPOSED = (
        "ping",
        "register_sensor",
        "insert_reading",
        "submit_batch",
        "locate",
        "confidence_in_region",
        "probability_in_region",
        "objects_in_region",
        "objects_in_region_reference",
        "tracked_objects",
        "subscribe",
        "unsubscribe",
        "enable_semantic_feed",
        "take_events",
        "drain",
        "stats",
        "check_invariants",
        "fingerprint",
        "reset",
        "shutdown",
    )

    def __init__(self, config: Dict[str, Any]) -> None:
        self._config = config
        self.shard_index = int(config.get("shard_index", 0))
        self.num_shards = int(config.get("num_shards", 1))
        self._world_json = config["world_json"]
        self._shutdown = threading.Event()
        self._events: List[Dict[str, Any]] = []
        self._event_seq = 0
        self._event_lock = threading.Lock()
        self.durability = None
        self.recovered_rows = 0
        self.sync_inserts = 0
        self._semantic_feed_enabled = False
        self._build()

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _build(self) -> None:
        config = self._config
        recover_from = config.get("recover_from")
        if recover_from:
            from repro.storage import recover
            state = recover(recover_from)
            self.db: SpatialDatabase = state.db
            self.recovered_rows = len(self.db.sensor_readings)
            restored_subs = state.subscriptions()
        else:
            self.db = SpatialDatabase(world_from_json(self._world_json))
            self.recovered_rows = 0
            restored_subs = []
        wal_dir = config.get("wal_dir")
        if wal_dir:
            from repro.storage import DurabilityManager, DurabilityMode
            mode = DurabilityMode(config.get("durability_mode", "buffered"))
            self.durability = DurabilityManager(
                self.db, wal_dir, mode=mode,
                snapshot_interval=config.get("snapshot_interval"),
            ).attach()
        self.service = LocationService(
            self.db,
            fusion_cache_capacity=config.get("fusion_cache_capacity", 32),
        )
        if restored_subs:
            consumers = {record["subscription_id"]: self._event_consumer
                         for record in restored_subs}
            self.service.restore_subscriptions(restored_subs, consumers)
        pipe_cfg = config.get("pipeline") or {}
        self.pipeline = LocationPipeline(
            self.service,
            config=PipelineConfig(
                workers=pipe_cfg.get("workers", 1),
                max_batch=pipe_cfg.get("max_batch", 16),
                max_wait=pipe_cfg.get("max_wait", 0.05),
                queue_capacity=pipe_cfg.get("queue_capacity", 256),
                overflow_policy=pipe_cfg.get("overflow_policy", "block"),
            ),
        ).start()
        if self._semantic_feed_enabled:
            self.service.set_location_update_listener(self._semantic_feed)

    def _teardown(self) -> None:
        self.pipeline.stop()
        if self.durability is not None:
            self.durability.close()
            self.durability = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return {"shard": self.shard_index, "pid": os.getpid()}

    def register_sensor(self, sensor_id: str, sensor_type: str,
                        confidence: float, time_to_live: float,
                        spec: Optional[Dict[str, Any]] = None) -> bool:
        # Idempotent: the router re-broadcasts the sensor table to a
        # restarted shard, whose recovery may already have replayed
        # some (or all) registrations from the write-ahead log.
        if self.db.sensor_specs.get(sensor_id) is not None:
            return False
        self.db.register_sensor(sensor_id, sensor_type, confidence,
                                time_to_live, decode_spec(spec))
        return True

    def insert_reading(self, sensor_id: str, glob_prefix: str,
                       sensor_type: str, object_id: str, rect: Rect,
                       detection_time: float,
                       location: Optional[Point] = None,
                       detection_radius: float = 0.0) -> int:
        """Synchronous insert with triggers — the reference-equivalent
        path (one insert, one trigger evaluation, same as the
        single-process engine's ``fire_triggers=True``)."""
        with self._event_lock:
            self.sync_inserts += 1
        return self.db.insert_reading(
            sensor_id=sensor_id, glob_prefix=glob_prefix,
            sensor_type=sensor_type, mobile_object_id=object_id,
            rect=rect, detection_time=detection_time,
            location=location, detection_radius=detection_radius,
            fire_triggers=True)

    def submit_batch(self, readings: List[Any]) -> int:
        """Asynchronous ingest through the shard's pipeline.

        Accepts :class:`PipelineReading` values directly (the binary
        codec ships them packed) as well as the legacy field dicts
        older routers send.  Returns how many readings the intake
        accepted; refused/dead-lettered ones are visible in
        :meth:`stats`.
        """
        from repro.errors import IntakeOverflowError
        accepted = 0
        for data in readings:
            reading = (data if isinstance(data, PipelineReading)
                       else reading_from_wire(data))
            try:
                if self.pipeline.submit(reading):
                    accepted += 1
            except IntakeOverflowError:
                continue  # counted in the shard's ``rejected`` stat
        return accepted

    def drain(self, timeout: float = 30.0) -> bool:
        return self.pipeline.drain(timeout)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def locate(self, object_id: str, now: Optional[float] = None,
               requester: Optional[str] = None):
        return self.service.locate(object_id, now, requester)

    def confidence_in_region(self, object_id: str, region: Rect,
                             now: Optional[float] = None) -> float:
        return self.service.confidence_in_region(object_id, region, now)

    def probability_in_region(self, object_id: str, region: Rect,
                              now: Optional[float] = None) -> float:
        return self.service.probability_in_region(object_id, region, now)

    def objects_in_region(self, region: Rect, now: Optional[float] = None,
                          min_confidence: float = 0.5) -> List[List[Any]]:
        pairs = self.service.objects_in_region(region, now, min_confidence)
        return [[object_id, confidence] for object_id, confidence in pairs]

    def objects_in_region_reference(self, region: Rect,
                                    now: Optional[float] = None,
                                    min_confidence: float = 0.5
                                    ) -> List[List[Any]]:
        pairs = self.service.objects_in_region_reference(
            region, now, min_confidence)
        return [[object_id, confidence] for object_id, confidence in pairs]

    def tracked_objects(self) -> List[str]:
        return self.db.tracked_objects()

    # ------------------------------------------------------------------
    # Subscriptions: events buffer shard-side, the router drains them
    # ------------------------------------------------------------------

    def _event_consumer(self, event: Dict[str, Any]) -> None:
        with self._event_lock:
            self._event_seq += 1
            stamped = dict(event)
            stamped["_seq"] = self._event_seq
            stamped["_shard"] = self.shard_index
            self._events.append(stamped)

    def subscribe(self, record: Dict[str, Any]) -> str:
        """Install a region subscription under the router-chosen id."""
        bucket = record.get("bucket")
        subscription = Subscription(
            subscription_id=record["subscription_id"],
            region=record["region"],
            kind=record.get("kind", KIND_ENTER),
            region_glob=record.get("region_glob"),
            object_id=record.get("object_id"),
            threshold=record.get("threshold", 0.5),
            bucket=(ProbabilityBucket[bucket]
                    if bucket is not None else None),
            consumer=self._event_consumer,
        )
        if self.db.journal is not None:
            self.db.journal.log_subscribe(
                LocationService._subscription_record(subscription))
        self.service._install_region_subscription(subscription)
        return subscription.subscription_id

    def unsubscribe(self, subscription_id: str) -> bool:
        return self.service.unsubscribe(subscription_id)

    def enable_semantic_feed(self) -> bool:
        """Mirror every fused location into the event buffer.

        Semantic rules span objects that may live on different shards
        (``colocated_at``, ``near``), so no single shard can evaluate
        them.  Instead each shard forwards per-fusion
        :class:`LocationUpdate` records, tagged ``"_kind": "semloc"``,
        through the same buffer region events use; the router replays
        the merged stream through its own trigger engine.  Idempotent —
        the router re-broadcasts after a restart or rebind.
        """
        self._semantic_feed_enabled = True
        self.service.set_location_update_listener(self._semantic_feed)
        return True

    def _semantic_feed(self, update: LocationUpdate) -> None:
        with self._event_lock:
            self._event_seq += 1
            self._events.append({
                "_kind": "semloc",
                "object_id": update.object_id,
                "region": update.region,
                "center": [update.center[0], update.center[1]],
                "support": update.support,
                "confidence": update.confidence,
                "time": update.time,
                "_seq": self._event_seq,
                "_shard": self.shard_index,
            })

    def take_events(self) -> List[Dict[str, Any]]:
        with self._event_lock:
            out, self._events = self._events, []
        return out

    # ------------------------------------------------------------------
    # Observability and verification
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        snapshot = dataclasses.asdict(self.pipeline.stats())
        return {
            "shard": self.shard_index,
            "pid": os.getpid(),
            "pipeline": snapshot,
            "cache": self.service.cache_stats(),
            "query": self.service.query_stats(),
            "readings": len(self.db.sensor_readings),
            "tracked": len(self.db.tracked_objects()),
            "recovered_rows": self.recovered_rows,
            "sync_inserts": self.sync_inserts,
            "events_buffered": len(self._events),
            "durability": (self.durability.stats()
                           if self.durability is not None else None),
        }

    def check_invariants(self) -> List[str]:
        """Shard-local invariant sweep; empty list means healthy.

        Parity accounts for recovery: rows present at rebuild are not
        the restarted pipeline's fusions, so the table must hold
        exactly ``recovered + fused`` rows.
        """
        from repro.faults.invariants import unique_reading_ids
        errors = list(unique_reading_ids(self.db))
        stats = self.pipeline.stats()
        if not stats.reconciles():
            errors.append(
                f"shard {self.shard_index}: enqueued={stats.enqueued} != "
                f"fused={stats.fused} + dropped={stats.dropped} + "
                f"dead_lettered={stats.dead_lettered}")
        expected = self.recovered_rows + self.sync_inserts + stats.fused
        actual = len(self.db.sensor_readings)
        if actual != expected:
            errors.append(
                f"shard {self.shard_index}: table has {actual} rows, "
                f"expected recovered={self.recovered_rows} + "
                f"sync={self.sync_inserts} + fused={stats.fused}")
        return errors

    def fingerprint(self) -> str:
        from repro.storage import readings_fingerprint
        return readings_fingerprint(self.db)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> bool:
        """Discard all state and rebuild fresh (test-suite reuse).

        Only meaningful for non-durable shards: a WAL-backed shard's
        history must not be silently discarded.
        """
        if self.durability is not None or self._config.get("wal_dir"):
            raise ServiceError("cannot reset a durable shard")
        self._teardown()
        self._config.pop("recover_from", None)
        with self._event_lock:
            self._events = []
            self._event_seq = 0
            self.sync_inserts = 0
        self._build()
        return True

    def shutdown(self) -> bool:
        self._shutdown.set()
        return True

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        finished = self._shutdown.wait(timeout)
        if finished:
            self._teardown()
        return finished


def shard_worker_main(config: Dict[str, Any], conn) -> None:
    """Spawn target: serve one shard until told to shut down."""
    orb = Orb(f"shard-{config.get('shard_index', 0)}",
              wire_codec=config.get("wire_codec", "binary"))
    servant = ShardServant(config)
    orb.register(SHARD_OBJECT_ID, servant)
    _, port = orb.listen(config.get("host", "127.0.0.1"), 0)
    conn.send(port)
    conn.close()
    try:
        servant.wait_for_shutdown()
    finally:
        orb.shutdown()
