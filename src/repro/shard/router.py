"""The shard router: one service face over N shard processes.

The router is what applications (and the simulator's adapters) talk
to.  It owns no readings itself: inserts and object-scoped queries
(``locate``, region confidence) route to the owning shard chosen by
the :class:`~repro.shard.partitioner.HashPartitioner`; cross-shard
queries (``objects_in_region``, path distance between objects on
different shards) fan out as pipelined requests — one frame written
per shard on its multiplexed connection, responses merged as they
land — with the order the single-process engine pins.

Two ingest paths mirror the single-process engine's two:

* :meth:`insert_reading` — synchronous, triggers fire per insert on
  the owning shard (the reference-equivalent path);
* :meth:`submit` — the :class:`~repro.sensors.base.ReadingSink`
  contract: readings queue per shard and background sender threads
  flush them in batches through each shard's ingestion pipeline.
  A shard that dies mid-stream fails its in-flight batch; those
  readings are counted ``router_dead_lettered`` so fleet accounting
  still reconciles exactly.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import (
    RemoteInvocationError,
    ServiceError,
    TransportError,
    UnknownObjectError,
)
from repro.geometry import Point, Rect
from repro.model import Glob, WorldModel
from repro.orb import Orb
from repro.pipeline import PipelineReading
from repro.reasoning import NavigationGraph, SpatialRelations
from repro.reasoning.incremental import MODE_INCREMENTAL, LocationUpdate
from repro.service.semantic_subscriptions import (
    SemanticSubscription,
    SemanticSubscriptionManager,
)
from repro.service.subscriptions import KIND_BOTH
from repro.shard.merge import merge_event_streams, merge_region_results
from repro.shard.partitioner import HashPartitioner
from repro.storage.records import encode_spec

_REMOTE_PASSTHROUGH = ("UnknownObjectError", "PrivacyError", "ServiceError")


def _translate(exc: RemoteInvocationError) -> Exception:
    """Surface well-known remote faults as their local types."""
    if exc.remote_type == "UnknownObjectError":
        return UnknownObjectError(str(exc))
    if exc.remote_type in _REMOTE_PASSTHROUGH:
        return ServiceError(f"{exc.remote_type}: {exc}")
    return exc


class _ShardSender(threading.Thread):
    """Background flusher for one shard's outbound reading queue.

    Batch size adapts to backlog: each drain that still leaves a
    backlog doubles the next batch (up to ``8 * base``), and a drain
    that empties the queue decays it back toward the configured base —
    bursty ingest amortizes the per-RPC cost over bigger batches while
    quiet streams keep the low-latency small ones.  Queue depth, peak,
    current batch size and an EWMA of flush latency are exported
    through :meth:`snapshot` into ``ShardRouter.stats()``.
    """

    def __init__(self, router: "ShardRouter", index: int) -> None:
        super().__init__(name=f"shard-sender-{index}", daemon=True)
        self.router = router
        self.index = index
        self.queue: "deque[PipelineReading]" = deque()
        self.lock = threading.Lock()
        self.wakeup = threading.Condition(self.lock)
        self.closed = False
        self.batch_size = router.batch_size
        self.max_batch = router.batch_size * 8
        self.inflight = 0
        self.queue_peak = 0
        self.batches = 0
        self.flush_latency = 0.0

    def put(self, reading: PipelineReading) -> None:
        with self.lock:
            self.queue.append(reading)
            if len(self.queue) > self.queue_peak:
                self.queue_peak = len(self.queue)
            self.wakeup.notify()

    def pending(self) -> int:
        """Queued plus in-flight — a reading is pending until its
        batch has been accounted forwarded or dead-lettered."""
        with self.lock:
            return len(self.queue) + self.inflight

    def snapshot(self) -> Dict[str, Any]:
        with self.lock:
            return {
                "shard": self.index,
                "queue_depth": len(self.queue) + self.inflight,
                "queue_peak": self.queue_peak,
                "batch_size": self.batch_size,
                "batches": self.batches,
                "flush_latency": self.flush_latency,
            }

    def close(self) -> None:
        with self.lock:
            self.closed = True
            self.wakeup.notify()

    def run(self) -> None:
        import time
        base = self.router.batch_size
        while True:
            with self.lock:
                while not self.queue and not self.closed:
                    self.wakeup.wait(0.1)
                if self.closed and not self.queue:
                    return
                backlog = len(self.queue)
                if backlog > self.batch_size:
                    self.batch_size = min(self.batch_size * 2,
                                          self.max_batch)
                elif backlog <= base and self.batch_size > base:
                    self.batch_size = max(base, self.batch_size // 2)
                batch = [self.queue.popleft()
                         for _ in range(min(self.batch_size, backlog))]
                self.inflight = len(batch)
            start = time.monotonic()
            self.router._flush_batch(self.index, batch)
            elapsed = time.monotonic() - start
            with self.lock:
                self.inflight = 0
                self.batches += 1
                self.flush_latency = (
                    elapsed if self.batches == 1
                    else 0.8 * self.flush_latency + 0.2 * elapsed)


class ShardRouter:
    """Route inserts and queries across a fleet of shard servants.

    Args:
        orb: client broker used to resolve ``shard_refs``.
        shard_refs: one stringified reference per shard, index-aligned
            with the partitioner's slots.
        world: the same world model the shards loaded (symbolic-region
            resolution and path distance are computed router-side).
        partitioner: placement override; defaults to a plain
            :class:`HashPartitioner` over ``len(shard_refs)``.
        batch_size: readings per ``submit_batch`` RPC on the async path.
    """

    def __init__(self, orb: Orb, shard_refs: List[str], world: WorldModel,
                 partitioner: Optional[HashPartitioner] = None,
                 batch_size: int = 32) -> None:
        if not shard_refs:
            raise ServiceError("router needs at least one shard")
        self.orb = orb
        self.world = world
        self.num_shards = len(shard_refs)
        self.partitioner = (partitioner if partitioner is not None
                            else HashPartitioner(self.num_shards))
        if self.partitioner.num_shards != self.num_shards:
            raise ServiceError("partitioner shard count mismatch")
        self.batch_size = batch_size
        self._refs = list(shard_refs)
        self._proxies = [orb.resolve(ref) for ref in shard_refs]
        self.navigation = NavigationGraph(world)
        self.relations = SpatialRelations(world, self.navigation)
        self._senders = [_ShardSender(self, i)
                         for i in range(self.num_shards)]
        for sender in self._senders:
            sender.start()
        self._stats_lock = threading.Lock()
        self.submitted = 0
        self.forwarded = 0
        self.router_dead_lettered = 0
        self.fanout_queries = 0
        self.targeted_queries = 0
        self.last_errors: List[str] = []
        self._sensor_registry: List[Tuple[Any, ...]] = []
        self._consumers: Dict[str, Callable[[Dict[str, Any]], None]] = {}
        self._subscription_shards: Dict[str, List[int]] = {}
        self._sub_seq = 0
        self.semantic: Optional[SemanticSubscriptionManager] = None
        self._semantic_feed_on = False
        self._closed = False

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------

    def proxy(self, index: int):
        return self._proxies[index]

    def rebind(self, index: int, reference: str) -> None:
        """Point one shard slot at a replacement endpoint (restart).

        The sensor table is re-broadcast to the replacement: a buffered
        write-ahead log SIGKILLed before its group commit can lose the
        registration records, and a shard without sensor specs would
        silently refuse to fuse everything it recovers from here on.
        The servant side is idempotent, so replaying registrations the
        WAL did preserve is harmless.
        """
        self._refs[index] = reference
        proxy = self.orb.resolve(reference)
        self._proxies[index] = proxy
        for record in self._sensor_registry:
            proxy.register_sensor(*record)
        if self._semantic_feed_on:
            proxy.enable_semantic_feed()

    def _count(self, counter: str, by: int = 1) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + by)

    def _record_error(self, message: str) -> None:
        with self._stats_lock:
            self.last_errors.append(message)
            del self.last_errors[:-32]

    # ------------------------------------------------------------------
    # Sensor registration (broadcast: every shard fuses with the full
    # sensor table, so the classifier's bucket boundaries match the
    # reference engine's everywhere)
    # ------------------------------------------------------------------

    def register_sensor(self, sensor_id: str, sensor_type: str,
                        confidence: float, time_to_live: float,
                        spec: Optional[object] = None) -> None:
        encoded = encode_spec(spec)  # type: ignore[arg-type]
        record = (sensor_id, sensor_type, confidence, time_to_live,
                  encoded)
        with self._stats_lock:
            self._sensor_registry.append(record)
        for proxy in self._proxies:
            proxy.register_sensor(*record)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def shard_of(self, object_id: str,
                 region_hint: Optional[str] = None) -> int:
        return self.partitioner.shard_for(object_id, region_hint)

    def insert_reading(self, sensor_id: str, glob_prefix: str,
                       sensor_type: str, mobile_object_id: str,
                       rect: Rect, detection_time: float,
                       location: Optional[Point] = None,
                       detection_radius: float = 0.0) -> int:
        """Synchronous insert on the owning shard (triggers fire there)."""
        shard = self.shard_of(mobile_object_id, glob_prefix)
        try:
            return self._proxies[shard].insert_reading(
                sensor_id, glob_prefix, sensor_type, mobile_object_id,
                rect, detection_time, location, detection_radius)
        except RemoteInvocationError as exc:
            raise _translate(exc) from exc

    def submit(self, reading: PipelineReading) -> bool:
        """The adapters' sink contract: queue for asynchronous flush."""
        if self._closed:
            return False
        shard = self.shard_of(reading.object_id, reading.glob_prefix)
        self._count("submitted")
        self._senders[shard].put(reading)
        return True

    def _flush_batch(self, index: int,
                     batch: List[PipelineReading]) -> None:
        # Readings ship as registered wire values (struct-packed on
        # binary connections); servants also accept the legacy dict
        # shape, so old peers interoperate.
        try:
            self._proxies[index].submit_batch(batch)
        except (TransportError, RemoteInvocationError) as exc:
            # The shard is down (or rejected the batch wholesale):
            # account every reading so fleet totals still reconcile.
            self._count("router_dead_lettered", len(batch))
            self._record_error(f"shard {index}: {exc}")
        else:
            self._count("forwarded", len(batch))

    def drain(self, timeout: float = 30.0) -> bool:
        """Flush sender queues, then drain every live shard pipeline."""
        import time
        deadline = time.monotonic() + timeout
        while any(s.pending() for s in self._senders):
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.002)
        # Pipelined like _fan_out: every shard drains concurrently, so
        # the wall cost is the slowest shard, not the per-shard sum —
        # with many shards on few cores the serial version paid one
        # scheduling round-trip per shard.
        ok = True
        remaining = max(0.1, deadline - time.monotonic())
        handles = [proxy.orb_invoke_async("drain", remaining)
                   for proxy in self._proxies]
        for index, handle in enumerate(handles):
            try:
                ok = handle.result() and ok
            except (TransportError, RemoteInvocationError) as exc:
                self._record_error(f"shard {index} drain: {exc}")
                ok = False
        return ok

    # ------------------------------------------------------------------
    # Object-scoped queries: route to the owner
    # ------------------------------------------------------------------

    def locate(self, object_id: str, now: Optional[float] = None,
               requester: Optional[str] = None):
        self._count("targeted_queries")
        try:
            return self._proxies[self.shard_of(object_id)].locate(
                object_id, now, requester)
        except RemoteInvocationError as exc:
            raise _translate(exc) from exc

    def confidence_in_region(self, object_id: str,
                             region: Union[Rect, Glob, str],
                             now: Optional[float] = None) -> float:
        self._count("targeted_queries")
        rect = self._region_rect(region)
        try:
            return self._proxies[self.shard_of(object_id)] \
                .confidence_in_region(object_id, rect, now)
        except RemoteInvocationError as exc:
            raise _translate(exc) from exc

    def probability_in_region(self, object_id: str,
                              region: Union[Rect, Glob, str],
                              now: Optional[float] = None) -> float:
        self._count("targeted_queries")
        rect = self._region_rect(region)
        try:
            return self._proxies[self.shard_of(object_id)] \
                .probability_in_region(object_id, rect, now)
        except RemoteInvocationError as exc:
            raise _translate(exc) from exc

    # ------------------------------------------------------------------
    # Cross-shard queries: fan out and merge
    # ------------------------------------------------------------------

    def _fan_out(self, method: str, *args: Any) -> List[Any]:
        """Invoke ``method(*args)`` on every shard, pipelined.

        On a multiplexed connection this is one frame written per
        shard — no thread spawned per request — with responses
        collected as they land.  Raises the first failure only after
        every shard has answered — partial answers would silently drop
        a shard's objects.
        """
        handles = [proxy.orb_invoke_async(method, *args)
                   for proxy in self._proxies]
        results: List[Any] = [None] * self.num_shards
        failures: List[Exception] = []
        for index, handle in enumerate(handles):
            try:
                results[index] = handle.result()
            except Exception as exc:  # noqa: BLE001 — re-raised below
                failures.append(exc)
        if failures:
            exc = failures[0]
            if isinstance(exc, RemoteInvocationError):
                raise _translate(exc) from exc
            raise exc
        return results

    def objects_in_region(self, region: Union[Rect, Glob, str],
                          now: Optional[float] = None,
                          min_confidence: float = 0.5
                          ) -> List[Tuple[str, float]]:
        """Who is in a region? — fanned out, merged, reference-ordered."""
        self._count("fanout_queries")
        rect = self._region_rect(region)
        chunks = self._fan_out("objects_in_region", rect, now,
                               min_confidence)
        return merge_region_results(chunks)

    def objects_in_region_reference(self, region: Union[Rect, Glob, str],
                                    now: Optional[float] = None,
                                    min_confidence: float = 0.5
                                    ) -> List[Tuple[str, float]]:
        self._count("fanout_queries")
        rect = self._region_rect(region)
        chunks = self._fan_out("objects_in_region_reference", rect, now,
                               min_confidence)
        return merge_region_results(chunks)

    def tracked_objects(self) -> List[str]:
        chunks = self._fan_out("tracked_objects")
        out: List[str] = []
        for chunk in chunks:
            out.extend(chunk)
        return sorted(out)

    def distance_between(self, first: str, second: str,
                         path: bool = False,
                         now: Optional[float] = None) -> Optional[float]:
        """Distance between two objects that may live on different
        shards: each owner computes its estimate; the router's own
        spatial-reasoning layer (same world model) measures between
        them — including the navigation-graph path metric."""
        estimates = self._fan_out_estimates((first, second), now)
        return self.relations.distance_between(
            estimates[first], estimates[second], path)

    def proximity(self, first: str, second: str, threshold: float,
                  now: Optional[float] = None):
        estimates = self._fan_out_estimates((first, second), now)
        return self.relations.proximity(
            estimates[first], estimates[second], threshold)

    def _fan_out_estimates(self, object_ids, now):
        """Locate several objects pipelined (distinct owners)."""
        handles = []
        for object_id in object_ids:
            self._count("targeted_queries")
            proxy = self._proxies[self.shard_of(object_id)]
            handles.append(
                (object_id, proxy.orb_invoke_async("locate", object_id,
                                                   now)))
        estimates: Dict[str, Any] = {}
        failures: List[Exception] = []
        for object_id, handle in handles:
            try:
                estimates[object_id] = handle.result()
            except RemoteInvocationError as exc:
                failures.append(_translate(exc))
            except Exception as exc:  # noqa: BLE001 — re-raised below
                failures.append(exc)
        if failures:
            raise failures[0]
        return estimates

    # ------------------------------------------------------------------
    # Subscriptions (push mode): installed shard-side, drained here
    # ------------------------------------------------------------------

    def subscribe(self, region: Union[Rect, Glob, str],
                  consumer: Callable[[Dict[str, Any]], None],
                  kind: str = "enter",
                  object_id: Optional[str] = None,
                  threshold: float = 0.5,
                  bucket: Optional[str] = None) -> str:
        """Install a region subscription across the fleet.

        Object-scoped subscriptions go only to the owner; open ones
        broadcast — a region can straddle every shard's population.
        Events buffer on the shards; :meth:`pump_events` drains and
        delivers them to ``consumer`` in merged order.
        """
        with self._stats_lock:
            self._sub_seq += 1
            sid = f"rsub-{self._sub_seq}"
        record = {
            "subscription_id": sid,
            "region": self._region_rect(region),
            "region_glob": (str(region)
                            if not isinstance(region, Rect) else None),
            "kind": kind,
            "object_id": object_id,
            "threshold": threshold,
            "bucket": bucket,
        }
        if object_id is not None:
            shards = [self.shard_of(object_id)]
        else:
            shards = list(range(self.num_shards))
        for index in shards:
            self._proxies[index].subscribe(record)
        self._consumers[sid] = consumer
        self._subscription_shards[sid] = shards
        return sid

    # ------------------------------------------------------------------
    # Semantic subscriptions: router-side engine over the merged feed
    # ------------------------------------------------------------------

    def semantic_manager(
            self, mode: str = MODE_INCREMENTAL
    ) -> SemanticSubscriptionManager:
        """The router's semantic manager, created on first use.

        Semantic rules relate objects across shard boundaries
        (``colocated_at``, ``near``), so no single shard can evaluate
        them; the router owns the one engine and replays the fleet's
        merged location feed through it.
        """
        if self.semantic is None:
            self.semantic = SemanticSubscriptionManager(
                self.world, mode=mode)
        elif self.semantic.engine.mode != mode:
            raise ServiceError(
                f"semantic engine already running in "
                f"{self.semantic.engine.mode!r} mode")
        return self.semantic

    def subscribe_semantic(self, rule: str,
                           consumer: Optional[
                               Callable[[Dict[str, Any]], None]] = None,
                           kind: str = KIND_BOTH,
                           now: float = 0.0,
                           mode: str = MODE_INCREMENTAL) -> str:
        """Install a semantic rule fleet-wide.

        Shards are told (idempotently) to start mirroring fused
        locations into their event buffers; :meth:`pump_events` feeds
        the merged stream through the router's engine and delivers
        semantic events inline, at their merge position.  The engine
        state lives entirely router-side, so shard kill/recover cannot
        duplicate or lose semantic transitions — at worst a crashed
        shard's unfused readings never become location updates.
        """
        manager = self.semantic_manager(mode)
        with self._stats_lock:
            self._sub_seq += 1
            sid = f"rsem-{self._sub_seq}"
        if not self._semantic_feed_on:
            for proxy in self._proxies:
                proxy.enable_semantic_feed()
            self._semantic_feed_on = True
        subscription = SemanticSubscription(
            subscription_id=sid, rule=rule, kind=kind, consumer=consumer)
        self._deliver_semantic(manager.add(subscription, now))
        return sid

    def declare_semantic_fact(self, functor: str, *args: str,
                              now: Optional[float] = None) -> None:
        self._deliver_semantic(
            self.semantic_manager().declare_fact(functor, *args, now=now))

    def retract_semantic_fact(self, functor: str, *args: str,
                              now: Optional[float] = None) -> None:
        self._deliver_semantic(
            self.semantic_manager().retract_fact(functor, *args, now=now))

    def reset_semantic(self) -> None:
        """Drop every semantic subscription and the engine's state.

        Pairs with the shard servants' ``reset()`` in test-suite reuse;
        shards keep mirroring location updates (the feed flag is
        sticky), which :meth:`pump_events` skips while no manager
        exists.
        """
        self.semantic = None

    def semantic_tick(self, now: float) -> int:
        """Advance the semantic clock (dwell windows) between fusions."""
        if self.semantic is None:
            return 0
        return self._deliver_semantic(self.semantic.tick(now))

    def _deliver_semantic(self, deliveries: List[Any]) -> int:
        delivered = 0
        for subscription, event in deliveries:
            if subscription.consumer is not None:
                subscription.consumer(event)
                delivered += 1
        return delivered

    def unsubscribe(self, subscription_id: str) -> bool:
        if self.semantic is not None \
                and self.semantic.remove(subscription_id):
            return True
        shards = self._subscription_shards.pop(subscription_id, None)
        self._consumers.pop(subscription_id, None)
        if shards is None:
            return False
        removed = False
        for index in shards:
            try:
                removed = self._proxies[index].unsubscribe(
                    subscription_id) or removed
            except (TransportError, RemoteInvocationError) as exc:
                self._record_error(
                    f"shard {index} unsubscribe: {exc}")
        return removed

    def pump_events(self) -> int:
        """Drain buffered events from every shard and deliver them.

        Returns the number delivered.  Per-object ordering is each
        owning shard's dispatch order; the cross-object interleave is
        fixed by the deterministic merge.
        """
        handles = [proxy.orb_invoke_async("take_events")
                   for proxy in self._proxies]
        chunks = []
        for index, handle in enumerate(handles):
            try:
                chunks.append(handle.result())
            except (TransportError, RemoteInvocationError) as exc:
                self._record_error(f"shard {index} events: {exc}")
        delivered = 0
        for event in merge_event_streams(chunks):
            if event.get("_kind") == "semloc":
                if self.semantic is None:
                    continue
                update = LocationUpdate(
                    object_id=event["object_id"],
                    region=event.get("region"),
                    center=(event["center"][0], event["center"][1]),
                    support=event.get("support"),
                    confidence=event.get("confidence", 1.0),
                    time=event.get("time", 0.0),
                )
                delivered += self._deliver_semantic(
                    self.semantic.on_update(update))
                continue
            consumer = self._consumers.get(event.get("subscription_id"))
            if consumer is None:
                continue
            consumer(event)
            delivered += 1
        return delivered

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Router counters plus per-shard engine stats, merged.

        ``fleet`` sums the per-shard pipeline counters into the same
        shape as a single pipeline's, so existing accounting checks
        (``enqueued == fused + dropped + dead_lettered``) apply
        fleet-wide unchanged.
        """
        handles = [proxy.orb_invoke_async("stats")
                   for proxy in self._proxies]
        shards: List[Optional[Dict[str, Any]]] = []
        for handle in handles:
            try:
                shards.append(handle.result())
            except (TransportError, RemoteInvocationError):
                shards.append(None)
        fleet = {"enqueued": 0, "fused": 0, "dropped": 0,
                 "dead_lettered": 0, "rejected": 0, "batches": 0,
                 "notifications": 0, "fusion_cache_hits": 0,
                 "incremental_fusions": 0, "readings": 0}
        for shard in shards:
            if shard is None:
                continue
            pipeline = shard["pipeline"]
            for key in fleet:
                if key == "readings":
                    fleet[key] += shard["readings"]
                else:
                    fleet[key] += pipeline[key]
        with self._stats_lock:
            router = {
                "shards": self.num_shards,
                "submitted": self.submitted,
                "forwarded": self.forwarded,
                "router_dead_lettered": self.router_dead_lettered,
                "pending": sum(s.pending() for s in self._senders),
                "fanout_queries": self.fanout_queries,
                "targeted_queries": self.targeted_queries,
                "errors": list(self.last_errors),
            }
        transport = self.orb.transport_stats()
        router["codec"] = transport["codec"]
        router["multiplexed_inflight_max"] = \
            transport["multiplexed_inflight_max"]
        router["senders"] = [s.snapshot() for s in self._senders]
        router.update(self.partitioner.stats())
        if self.semantic is not None:
            router["semantic"] = self.semantic.stats()
        return {"router": router, "fleet": fleet, "shards": shards}

    def reconciles(self) -> bool:
        """Fleet-wide accounting: every submitted reading is either on
        a shard (terminal pipeline state) or router-dead-lettered."""
        stats = self.stats()
        router = stats["router"]
        fleet = stats["fleet"]
        routed = router["forwarded"] + router["router_dead_lettered"] \
            + router["pending"]
        if router["submitted"] != routed:
            return False
        return fleet["enqueued"] == (fleet["fused"] + fleet["dropped"]
                                     + fleet["dead_lettered"])

    def check_invariants(self) -> List[str]:
        """Fleet invariant sweep: every live shard plus the router."""
        errors: List[str] = []
        handles = [proxy.orb_invoke_async("check_invariants")
                   for proxy in self._proxies]
        for index, handle in enumerate(handles):
            try:
                errors.extend(handle.result())
            except (TransportError, RemoteInvocationError) as exc:
                errors.append(f"shard {index} unreachable: {exc}")
        if not self.reconciles():
            errors.append("router accounting does not reconcile")
        return errors

    # ------------------------------------------------------------------

    def _region_rect(self, region: Union[Rect, Glob, str]) -> Rect:
        if isinstance(region, Rect):
            return region
        return self.world.resolve_symbolic(Glob.parse(str(region)))

    def close(self) -> None:
        self._closed = True
        for sender in self._senders:
            sender.close()
        for sender in self._senders:
            sender.join(timeout=5.0)
