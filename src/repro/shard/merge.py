"""Cross-shard result merging.

Shards own disjoint object sets, so merging is concatenation plus the
order pins the single-process engine already guarantees:

* ``objects_in_region`` — (confidence descending, object id), exactly
  the sort :meth:`LocationService.objects_in_region` applies.  Each
  per-object confidence is computed by one shard from that object's
  full reading set, so the merged list is bit-identical to the
  reference's.
* subscription events — (time, object id, shard-local sequence):
  events for one object come from one shard in its dispatch order, so
  the per-object subsequence is exactly the reference's dispatch
  order; cross-object interleaving is fixed deterministically by the
  sort.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple


def merge_region_results(
        per_shard: Iterable[List[Tuple[str, float]]]
) -> List[Tuple[str, float]]:
    """Merge per-shard (object_id, confidence) lists into one ordering."""
    merged: List[Tuple[str, float]] = []
    for chunk in per_shard:
        merged.extend((str(object_id), float(confidence))
                      for object_id, confidence in chunk)
    merged.sort(key=lambda pair: (-pair[1], pair[0]))
    return merged


def merge_event_streams(
        per_shard: Iterable[List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Merge per-shard event buffers into one deterministic stream.

    Each event carries a shard-local ``_seq`` stamped at dispatch;
    the merge key (time, object id, seq) preserves every shard's
    per-object dispatch order while fixing the interleave.
    """
    merged: List[Dict[str, Any]] = []
    for chunk in per_shard:
        merged.extend(chunk)
    merged.sort(key=lambda event: (event.get("time", 0.0),
                                   str(event.get("object_id", "")),
                                   event.get("_seq", 0)))
    return merged
