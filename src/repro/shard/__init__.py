"""Multiprocess scale-out: the world partitioned into shard processes.

The single-process engine is GIL-bound (the pipeline worker pool
anti-scales); this package breaks that ceiling by partitioning the
*tracked-object population* across N full engines in separate
processes, fronted by a router speaking the ORB's TCP transport.
Per-object state never splits across shards, so every shard's answers
are bit-identical to the single-process reference — pinned by
``tests/test_shard_equivalence.py``.

See ``docs/SHARDING.md`` for the partitioning, routing, merge and
failure/recovery story.
"""

from repro.shard.cluster import ShardCluster
from repro.shard.merge import merge_event_streams, merge_region_results
from repro.shard.partitioner import HashPartitioner
from repro.shard.router import ShardRouter
from repro.shard.worker import (
    SHARD_OBJECT_ID,
    ShardServant,
    shard_worker_main,
)

__all__ = [
    "SHARD_OBJECT_ID",
    "HashPartitioner",
    "ShardCluster",
    "ShardRouter",
    "ShardServant",
    "merge_event_streams",
    "merge_region_results",
    "shard_worker_main",
]
