"""Shard-fleet lifecycle: spawn, kill, recover, tear down.

A :class:`ShardCluster` owns N shard *processes* (``multiprocessing``
spawn context — no forked locks, same behaviour everywhere), collects
each one's bound TCP port through a pipe, and fronts them with a
:class:`~repro.shard.router.ShardRouter`.

The chaos suite drives the failure story through this class:
:meth:`kill_shard` SIGKILLs a worker mid-stream (no goodbye, exactly
like a machine loss) and :meth:`restart_shard` brings a replacement
up from the dead shard's write-ahead log — the new incarnation
journals into a fresh generation directory, because appending to a
log already replayed would restart sequence numbers mid-file.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError, TransportError
from repro.model import WorldModel
from repro.model.serialize import world_to_json
from repro.orb import Orb
from repro.shard.partitioner import HashPartitioner
from repro.shard.router import ShardRouter
from repro.shard.worker import SHARD_OBJECT_ID, shard_worker_main
from repro.sim.building import siebel_floor

_STARTUP_TIMEOUT = 60.0


class ShardCluster:
    """N shard processes plus the router that fronts them.

    Args:
        num_shards: fleet size.
        world: world model every shard loads (defaults to the Siebel
            floor); the router keeps its own copy for symbolic
            resolution and path reasoning.
        wal_root: when set, shard ``i`` journals into
            ``<wal_root>/shard-<i>/g<generation>`` and can be
            restarted from it.
        durability_mode: ``"buffered"`` | ``"strict"`` (with wal_root).
        pipeline: per-shard :class:`PipelineConfig` overrides (dict).
        fusion_cache_capacity: per-shard fusion memo entries.
        region_affinity: ``{glob_prefix: shard_index}`` placement hints.
        batch_size: router sender batch size.
        wire_codec: preferred ORB codec fleet-wide (``"binary"`` |
            ``"json"``); peers negotiate down to JSON automatically,
            so a mixed fleet still interoperates.
    """

    def __init__(self, num_shards: int,
                 world: Optional[WorldModel] = None, *,
                 wal_root: Optional[str] = None,
                 durability_mode: str = "buffered",
                 pipeline: Optional[Dict[str, Any]] = None,
                 fusion_cache_capacity: int = 32,
                 region_affinity: Optional[Dict[str, int]] = None,
                 batch_size: int = 32,
                 wire_codec: str = "binary",
                 start: bool = True) -> None:
        if num_shards < 1:
            raise ServiceError("need at least one shard")
        self.num_shards = num_shards
        self.world = world if world is not None else siebel_floor()
        self.world_json = world_to_json(self.world, indent=0)
        self.wal_root = wal_root
        self.durability_mode = durability_mode
        self.pipeline_config = dict(pipeline or {})
        self.fusion_cache_capacity = fusion_cache_capacity
        self.region_affinity = region_affinity
        self.batch_size = batch_size
        self.wire_codec = wire_codec
        self._ctx = multiprocessing.get_context("spawn")
        self._processes: List[Optional[Any]] = [None] * num_shards
        self._ports: List[Optional[int]] = [None] * num_shards
        self._generations = [0] * num_shards
        self.orb = Orb("shard-router", wire_codec=wire_codec)
        self.router: Optional[ShardRouter] = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _shard_config(self, index: int,
                      recover_from: Optional[str] = None
                      ) -> Dict[str, Any]:
        config: Dict[str, Any] = {
            "world_json": self.world_json,
            "shard_index": index,
            "num_shards": self.num_shards,
            "pipeline": dict(self.pipeline_config),
            "fusion_cache_capacity": self.fusion_cache_capacity,
            "wire_codec": self.wire_codec,
        }
        if self.wal_root is not None:
            config["wal_dir"] = self._wal_dir(index,
                                              self._generations[index])
            config["durability_mode"] = self.durability_mode
        if recover_from is not None:
            config["recover_from"] = recover_from
        return config

    def _wal_dir(self, index: int, generation: int) -> str:
        assert self.wal_root is not None
        return os.path.join(self.wal_root, f"shard-{index}",
                            f"g{generation}")

    def _spawn(self, index: int,
               recover_from: Optional[str] = None) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(self._shard_config(index, recover_from), child_conn),
            name=f"shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_STARTUP_TIMEOUT):
            process.terminate()
            raise TransportError(f"shard {index} failed to start")
        self._ports[index] = parent_conn.recv()
        parent_conn.close()
        self._processes[index] = process

    def start(self) -> "ShardCluster":
        if self.router is not None:
            raise ServiceError("cluster already started")
        for index in range(self.num_shards):
            self._spawn(index)
        partitioner = HashPartitioner(self.num_shards,
                                      self.region_affinity)
        self.router = ShardRouter(self.orb, self.references(),
                                  self.world, partitioner=partitioner,
                                  batch_size=self.batch_size)
        return self

    def reference(self, index: int) -> str:
        port = self._ports[index]
        if port is None:
            raise ServiceError(f"shard {index} has no endpoint")
        return f"tcp://127.0.0.1:{port}/{SHARD_OBJECT_ID}"

    def references(self) -> List[str]:
        return [self.reference(i) for i in range(self.num_shards)]

    # ------------------------------------------------------------------
    # Failure injection and recovery
    # ------------------------------------------------------------------

    def kill_shard(self, index: int) -> int:
        """SIGKILL one worker — no flush, no goodbye.  Returns its pid."""
        process = self._processes[index]
        if process is None:
            raise ServiceError(f"shard {index} is not running")
        pid = process.pid
        process.kill()
        process.join(timeout=10.0)
        self._processes[index] = None
        return pid

    def restart_shard(self, index: int, recover: bool = True) -> str:
        """Bring a replacement up, optionally from the dead WAL.

        The replacement journals into the next generation directory;
        the router is rebound to the new endpoint.  Returns the new
        reference.
        """
        if self._processes[index] is not None:
            raise ServiceError(f"shard {index} is still running")
        recover_from = None
        if recover:
            if self.wal_root is None:
                raise ServiceError("cannot recover without wal_root")
            recover_from = self._wal_dir(index, self._generations[index])
            self._generations[index] += 1
        self._spawn(index, recover_from)
        reference = self.reference(index)
        if self.router is not None:
            self.router.rebind(index, reference)
        return reference

    def alive(self, index: int) -> bool:
        process = self._processes[index]
        return process is not None and process.is_alive()

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        if self.router is not None:
            self.router.close()
        for index, process in enumerate(self._processes):
            if process is None:
                continue
            try:
                self.orb.resolve(self.reference(index)).shutdown()
            except Exception:  # noqa: BLE001 — dying shard, force below
                pass
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            self._processes[index] = None
        self.orb.shutdown()
        self.router = None

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
