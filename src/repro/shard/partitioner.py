"""Object-to-shard placement: stable hashing with region affinity.

The world is partitioned by *mobile object*, not by space: every
reading, trigger and query for one object lands on one shard, so a
shard fuses from the complete reading set and its answers are
bit-identical to the single-process engine's.  Placement must be
deterministic across processes and runs — the equivalence suite
replays one insert stream against 1, 2 and 4 shards and compares
results — so the hash is CRC-32 of the object id (Python's builtin
``hash`` is salted per process and would scatter objects differently
every run).

A deployment that knows where an object will mostly be sighted can
pre-place it near its data: ``region_affinity`` maps a region GLOB
prefix to a shard index, and the first sighting whose hint matches
pins the object there.  Pins are sticky — later sightings elsewhere
do not move the object, because moving it would split its reading
history across shards.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, Optional


class HashPartitioner:
    """Deterministic object-id -> shard-index placement.

    Args:
        num_shards: shard count (>= 1).
        region_affinity: optional ``{glob_prefix: shard_index}`` hints;
            a first sighting under a mapped prefix pins the object to
            that shard instead of its hash slot.
    """

    def __init__(self, num_shards: int,
                 region_affinity: Optional[Dict[str, int]] = None) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards
        self.region_affinity = dict(region_affinity or {})
        for prefix, index in self.region_affinity.items():
            if not 0 <= index < num_shards:
                raise ValueError(
                    f"affinity {prefix!r} -> {index} out of range")
        self._pins: Dict[str, int] = {}
        self._lock = threading.Lock()

    def hash_slot(self, object_id: str) -> int:
        """The pure hash placement, ignoring pins and affinity."""
        return zlib.crc32(object_id.encode("utf-8")) % self.num_shards

    def shard_for(self, object_id: str,
                  region_hint: Optional[str] = None) -> int:
        """The owning shard, pinning on first sight.

        ``region_hint`` is typically the reading's ``glob_prefix``;
        the longest affinity prefix it starts with wins.
        """
        with self._lock:
            pinned = self._pins.get(object_id)
            if pinned is not None:
                return pinned
            shard = None
            if region_hint and self.region_affinity:
                best = -1
                for prefix, index in self.region_affinity.items():
                    if (region_hint.startswith(prefix)
                            and len(prefix) > best):
                        best = len(prefix)
                        shard = index
            if shard is None:
                shard = self.hash_slot(object_id)
            self._pins[object_id] = shard
            return shard

    def pinned(self, object_id: str) -> Optional[int]:
        """The shard an object is already pinned to, if any."""
        with self._lock:
            return self._pins.get(object_id)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = {f"shard_{i}_objects": 0 for i in range(self.num_shards)}
            affine = 0
            for object_id, shard in self._pins.items():
                out[f"shard_{shard}_objects"] += 1
                if shard != self.hash_slot(object_id):
                    affine += 1
            out["pinned"] = len(self._pins)
            out["affinity_placed"] = affine
            return out
