"""The durability manager: WAL + snapshots + retention compaction.

One :class:`DurabilityManager` owns a WAL directory for one spatial
database::

    <wal_dir>/wal.log                 append-only mutation log
    <wal_dir>/snapshot-<seq>.json     periodic full-state snapshots
    <wal_dir>/archive.jsonl           compaction's expired-reading archive

It attaches to the database as its *journal*: every mutation at the
spatial-DB seam appends a logical record durably **before** the
mutation is applied (the spool-and-replay idiom), so
:func:`repro.storage.recovery.recover` can rebuild a
fingerprint-identical database from the directory alone.  The Location
Service logs its trigger/subscription registry through the same
journal, making push-mode state durable too.

Durability modes:

* ``DurabilityMode.OFF``      — no manager attached; the database's
  code path is bit-identical to the undurable build.
* ``DurabilityMode.BUFFERED`` — group-committed WAL (a deferred fsync
  every :data:`GROUP_COMMIT_INTERVAL` records, run off the ingest
  lock); a kill loses nothing, a power loss may cost the un-synced
  window, which :meth:`stats` reports as ``unsynced``.
* ``DurabilityMode.STRICT``   — fsync on every append.

Retention compaction (:meth:`compact`) cuts a snapshot, appends every
reading deleted since the previous compaction to the archive, then
truncates the WAL to an empty successor segment that continues the
sequence numbering — the snapshot's ``last_seq`` tells replay where
the log now begins.
"""

from __future__ import annotations

import json
import os
import threading
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulatedCrash, StorageError
from repro.storage import records as rec
from repro.storage.snapshot import capture_state, snapshot_name, write_snapshot
from repro.storage.wal import FSYNC_ALWAYS, FSYNC_NEVER, WriteAheadLog

WAL_NAME = "wal.log"
ARCHIVE_NAME = "archive.jsonl"

# BUFFERED mode's group-commit window: the un-synced record count that
# triggers a deferred fsync (a kill loses nothing either way; a power
# loss may cost up to this window, reported as stats()["unsynced"]).
GROUP_COMMIT_INTERVAL = 512

# Kill points the manager itself exposes to fault plans (the WAL adds
# "append" and "fsync").
POINT_SNAPSHOT = "snapshot"
POINT_COMPACT = "compact"

FaultHook = Callable[[str, int], None]


class DurabilityMode(str, Enum):
    """How hard the spatial database tries to survive a crash."""

    OFF = "off"
    BUFFERED = "buffered"
    STRICT = "strict"

    @property
    def fsync_policy(self) -> str:
        if self is DurabilityMode.STRICT:
            return FSYNC_ALWAYS
        # BUFFERED's group commit is driven by the manager
        # (:meth:`DurabilityManager.commit_if_due`), not by the WAL's
        # own batch policy: the fsync (~0.2ms) then runs after the
        # database has released its ingest lock, so it never stalls
        # concurrent inserters (benchmarks/test_wal_overhead.py).
        return FSYNC_NEVER


class DurabilityManager:
    """Journal for one :class:`~repro.spatialdb.SpatialDatabase`.

    Args:
        db: the database to make durable; ``attach`` wires the hooks.
        wal_dir: directory owning the WAL, snapshots and archive.
        mode: ``BUFFERED`` (group commit) or ``STRICT`` (fsync-always);
            ``OFF`` is expressed by *not* constructing a manager.
        snapshot_interval: cut a snapshot automatically once this many
            records have been appended since the last one (checked at
            :meth:`sync` / :meth:`maybe_snapshot` — never mid-append);
            ``None`` disables automatic snapshots.
        fault_hook: kill-point hook ``(point, seq)`` — normally
            installed via ``FaultPlan.attach_durability``.
    """

    def __init__(self, db, wal_dir: str,
                 mode: DurabilityMode = DurabilityMode.BUFFERED,
                 snapshot_interval: Optional[int] = None,
                 fault_hook: Optional[FaultHook] = None) -> None:
        if mode is DurabilityMode.OFF:
            raise StorageError(
                "DurabilityMode.OFF means no manager: simply do not "
                "attach one")
        self.db = db
        self.mode = mode
        self.wal_dir = str(wal_dir)
        os.makedirs(self.wal_dir, exist_ok=True)
        self.fault_hook = fault_hook
        self._lock = threading.RLock()
        # Durable push-mode registry: logical trigger/subscription
        # records currently live, snapshotted alongside table state.
        self._registry: List[Dict[str, Any]] = []
        # Readings deleted (expired/purged) since the last compaction,
        # waiting to be archived.
        self._archive_buffer: List[Dict[str, Any]] = []
        self.crashed = False
        self.snapshots_written = 0
        self.compactions = 0
        self.archived_rows = 0
        self._records_since_snapshot = 0
        # Advisory count of appends since the last group commit; kept
        # manager-side (unlocked) so commit_if_due never has to take
        # the WAL lock just to discover nothing is due.
        self._uncommitted = 0
        self._snapshot_interval = snapshot_interval
        self._wal = WriteAheadLog(
            os.path.join(self.wal_dir, WAL_NAME),
            fsync_policy=mode.fsync_policy,
            fault_hook=self._wal_hook)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self) -> "DurabilityManager":
        """Wire this manager into the database as its journal.

        Cuts a baseline snapshot of the current state first (the world
        model never travels through the WAL, so recovery needs at
        least one snapshot to rebuild it).
        """
        if self.db.journal is not None:
            raise StorageError("database already has a journal attached")
        if not any(name.startswith("snapshot-")
                   for name in os.listdir(self.wal_dir)):
            self.snapshot()
        self.db.attach_journal(self)
        return self

    def detach(self) -> None:
        if self.db.journal is self:
            self.db.attach_journal(None)

    def attach_fault_plan(self, plan) -> "DurabilityManager":
        """Install a :class:`repro.faults.FaultPlan`'s WAL kill points."""
        injectors = plan.wal_injectors()
        if injectors:
            def hook(point: str, seq: int) -> None:
                for injector in injectors:
                    injector.check(point, seq)
            self.fault_hook = hook
        return self

    def _wal_hook(self, point: str, seq: int) -> None:
        hook = self.fault_hook
        if hook is not None:
            try:
                hook(point, seq)
            except SimulatedCrash:
                self.crashed = True
                raise

    # ------------------------------------------------------------------
    # The journal surface (called by SpatialDatabase / LocationService)
    # ------------------------------------------------------------------

    def log(self, op: Dict[str, Any]) -> int:
        """Durably append one logical operation; returns its seq.

        Raises if the WAL cannot take the record — the caller must NOT
        apply the mutation in that case (write-ahead contract).
        """
        seq = self._wal.append(rec.encode_op(op))
        self._uncommitted += 1
        with self._lock:
            self._records_since_snapshot += 1
            self._apply_registry(op)
        return seq

    # Typed wrappers so callers at the spatial-DB seam never touch the
    # wire codec directly.

    def log_register_sensor(self, sensor_id: str, sensor_type: str,
                            confidence: float, time_to_live: float,
                            spec) -> int:
        return self.log({
            "op": rec.OP_REGISTER_SENSOR,
            "sensor_id": sensor_id,
            "sensor_type": sensor_type,
            "confidence": float(confidence),
            "time_to_live": float(time_to_live),
            "spec": rec.encode_spec(spec),
        })

    def log_insert(self, row: Dict[str, Any]) -> int:
        """Log one fully materialized sensor-readings row.

        The row carries the allocated ``reading_id`` and the computed
        ``moving`` flag, so replay restores it verbatim rather than
        re-deriving state-dependent values.  This is the hot journal
        call — one per fused reading, under the database's ingest
        lock — so it takes the specialized codec fast path and skips
        the registry dispatch (inserts never touch it).
        """
        seq = self._wal.append(rec.encode_insert_op(row))
        # Advisory interval counters, deliberately not under the
        # manager lock: a lost racy increment merely defers an
        # automatic snapshot or group commit by one record, and the
        # WAL append above already serialized this call's ordering.
        self._records_since_snapshot += 1
        self._uncommitted += 1
        return seq

    # Pre-encode an insert outside the database's ingest lock.  The
    # database calls this before taking its lock, then hands the parts
    # back through :meth:`log_prepared_insert` once the state-dependent
    # ``reading_id`` and ``moving`` are known — keeping the in-lock
    # encode cost near zero.  A bare staticmethod alias so the hot
    # path pays no wrapper frame.
    prepare_insert = staticmethod(rec.encode_insert_parts)

    def log_prepared_insert(self, parts, reading_id: int,
                            moving: bool) -> int:
        """Durably append a pre-encoded insert; same contract as
        :meth:`log_insert`."""
        seq = self._wal.append(
            rec.assemble_insert_op(parts, reading_id, moving))
        self._records_since_snapshot += 1
        self._uncommitted += 1
        return seq

    def log_expire(self, object_id: str, sensor_id: Optional[str],
                   reading_ids: List[int]) -> int:
        return self.log({
            "op": rec.OP_EXPIRE,
            "object_id": object_id,
            "sensor_id": sensor_id,
            "reading_ids": sorted(reading_ids),
        })

    def log_purge(self, now: float, reading_ids: List[int]) -> int:
        return self.log({
            "op": rec.OP_PURGE,
            "now": float(now),
            "reading_ids": sorted(reading_ids),
        })

    def log_create_trigger(self, trigger_id: str, region,
                           object_id: Optional[str]) -> int:
        return self.log({
            "op": rec.OP_CREATE_TRIGGER,
            "trigger_id": trigger_id,
            "region": rec.encode_rect(region),
            "object_id": object_id,
        })

    def log_drop_trigger(self, trigger_id: str) -> int:
        return self.log({"op": rec.OP_DROP_TRIGGER,
                         "trigger_id": trigger_id})

    def log_subscribe(self, record: Dict[str, Any]) -> int:
        return self.log(dict(record, op=rec.OP_SUBSCRIBE))

    def log_subscribe_proximity(self, record: Dict[str, Any]) -> int:
        return self.log(dict(record, op=rec.OP_SUBSCRIBE_PROXIMITY))

    def log_unsubscribe(self, subscription_id: str) -> int:
        return self.log({"op": rec.OP_UNSUBSCRIBE,
                         "subscription_id": subscription_id})

    def _apply_registry(self, op: Dict[str, Any]) -> None:
        name = op["op"]
        if name in (rec.OP_SUBSCRIBE, rec.OP_SUBSCRIBE_PROXIMITY,
                    rec.OP_CREATE_TRIGGER):
            self._registry.append(dict(op))
        elif name == rec.OP_UNSUBSCRIBE:
            sid = op["subscription_id"]
            self._registry = [
                r for r in self._registry
                if r.get("subscription_id") != sid]
        elif name == rec.OP_DROP_TRIGGER:
            tid = op["trigger_id"]
            self._registry = [
                r for r in self._registry
                if not (r["op"] == rec.OP_CREATE_TRIGGER
                        and r["trigger_id"] == tid)]

    def note_deleted(self, rows: List[Dict[str, Any]]) -> None:
        """Buffer expired/purged readings for the compaction archive."""
        if not rows:
            return
        with self._lock:
            for row in rows:
                self._archive_buffer.append(rec.encode_reading_row(row))

    def sync(self) -> None:
        """Group-commit the WAL (pipeline drain/stop call this)."""
        if not self.crashed:
            self._uncommitted = 0
            self._wal.sync()

    def commit_if_due(self) -> None:
        """Group-commit once the un-synced window reaches the interval.

        The database calls this *after* releasing its ingest lock, so
        the fsync serializes only appenders on the WAL's own lock —
        never the whole ingest path.  The due check reads the advisory
        manager-side counter rather than the WAL's locked accounting;
        a racy miss just rolls the commit into the next call.  No-op
        under STRICT (every append already fsynced) and after a
        simulated crash.
        """
        if self._uncommitted >= GROUP_COMMIT_INTERVAL and \
                not self.crashed:
            self._uncommitted = 0
            self._wal.sync()

    # ------------------------------------------------------------------
    # Snapshots and retention compaction
    # ------------------------------------------------------------------

    def registry(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._registry]

    def snapshot(self) -> str:
        """Cut a full-state snapshot at the current WAL position."""
        if self.crashed:
            raise StorageError("durability manager crashed; recover first")
        with self._lock:
            last_seq = self._wal.last_seq
            self._wal.sync()
            hook = self.fault_hook
            if hook is not None:
                try:
                    hook(POINT_SNAPSHOT, last_seq)
                except SimulatedCrash:
                    self.crashed = True
                    # A kill mid-snapshot: leave a torn document behind
                    # (recovery must skip it and fall back).
                    torn = os.path.join(self.wal_dir,
                                        snapshot_name(last_seq))
                    with open(torn, "w", encoding="utf-8") as handle:
                        handle.write('{"format": "middlewhere-snapsho')
                    raise
            state = capture_state(self.db, self.registry())
            path = write_snapshot(self.wal_dir, state, last_seq)
            self.snapshots_written += 1
            self._records_since_snapshot = 0
            return path

    def maybe_snapshot(self) -> Optional[str]:
        """Cut a snapshot if the automatic interval has elapsed."""
        if self.crashed or self._snapshot_interval is None:
            return None
        with self._lock:
            due = self._records_since_snapshot >= self._snapshot_interval
        return self.snapshot() if due else None

    def compact(self) -> str:
        """Snapshot, archive deleted readings, truncate the WAL.

        After compaction the log contains no records — everything up
        to the snapshot's ``last_seq`` is in the snapshot, readings
        that expired out of the table live on in ``archive.jsonl``,
        and the successor segment continues the sequence numbering.
        """
        path = self.snapshot()
        with self._lock:
            buffered, self._archive_buffer = self._archive_buffer, []
        if buffered:
            archive = os.path.join(self.wal_dir, ARCHIVE_NAME)
            with open(archive, "a", encoding="utf-8") as handle:
                for row in buffered:
                    handle.write(json.dumps(row, sort_keys=True,
                                            separators=(",", ":")))
                    handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            self.archived_rows += len(buffered)
        last_seq = self._wal.last_seq
        hook = self.fault_hook
        if hook is not None:
            try:
                hook(POINT_COMPACT, last_seq)
            except SimulatedCrash:
                # A kill between snapshot and truncation: the WAL still
                # holds records the snapshot already covers — replay
                # skips them by seq, so recovery stays exact.
                self.crashed = True
                raise
        self._wal.close()
        wal_path = os.path.join(self.wal_dir, WAL_NAME)
        open(wal_path, "wb").close()
        self._wal = WriteAheadLog(
            wal_path, fsync_policy=self.mode.fsync_policy,
            start_seq=last_seq + 1, fault_hook=self._wal_hook)
        # Re-seed the support MBRs off the live rows: compaction is the
        # retention boundary, so the grow-only union restarts from the
        # tightest sound bound (see ISSUE satellite on pruning parity).
        self.db.rebuild_reading_support()
        self.compactions += 1
        return path

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Durability counters, including the crash-window exposure."""
        return {
            "appended": self._wal.appended_count(),
            "last_seq": self._wal.last_seq,
            "synced_seq": self._wal.synced_seq,
            "unsynced": self._wal.unsynced_count(),
            "snapshots": self.snapshots_written,
            "compactions": self.compactions,
            "archived_rows": self.archived_rows,
            "registry_size": len(self._registry),
            "crashed": int(self.crashed),
        }

    def close(self) -> None:
        self.detach()
        if not self.crashed:
            self._wal.close()
