"""Durable snapshots of the spatial database's full table state.

A snapshot is one JSON document extending the blueprint codec of
:mod:`repro.model.serialize` from the world model to the *mutable*
state around it: the sensor-specs and sensor-readings tables, the
reading-id allocator, the per-(sensor, object) movement history, and
the durable trigger/subscription registry.  Together with the WAL
sequence number it was cut at (``last_seq``), a snapshot lets recovery
replay only the log suffix instead of the whole history — which is
what makes retention compaction (truncating the WAL past the last
snapshot) safe.

Snapshots are written atomically (temp file + ``os.replace``) and
carry a body checksum; a half-written snapshot from a kill
mid-snapshot fails verification and recovery falls back to the
previous one, paying a longer replay instead of reading garbage.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.records import (
    decode_reading_row,
    decode_spec,
    encode_reading_row,
    encode_rect,
    encode_spec,
)

SNAPSHOT_FORMAT = "middlewhere-snapshot"
SNAPSHOT_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


def snapshot_name(last_seq: int) -> str:
    return f"snapshot-{last_seq:012d}.json"


def capture_state(db, registry: Optional[List[Dict[str, Any]]] = None
                  ) -> Dict[str, Any]:
    """The database's complete durable state as a JSON-ready dict.

    ``registry`` is the durable trigger/subscription record list the
    :class:`~repro.storage.manager.DurabilityManager` maintains; it
    rides along so recovery can reinstate push-mode state too.
    """
    from repro.model.serialize import world_to_dict

    specs = []
    for row in db.sensor_specs.select():
        specs.append({
            "sensor_id": row["sensor_id"],
            "sensor_type": row["sensor_type"],
            "confidence": row["confidence"],
            "time_to_live": row["time_to_live"],
            "spec": encode_spec(row["spec"]),
        })
    readings = [encode_reading_row(row)
                for row in db.sensor_readings.select()]
    history = []
    with db._ingest_lock:
        next_reading_id = db._next_reading_id
        for (sensor_id, object_id), entries in sorted(db._history.items()):
            history.append({
                "sensor_id": sensor_id,
                "object_id": object_id,
                "entries": [[t, encode_rect(rect)] for t, rect in entries],
            })
    return {
        "world": world_to_dict(db.world),
        "sensor_specs": specs,
        "sensor_readings": readings,
        "next_reading_id": next_reading_id,
        "history": history,
        "registry": list(registry or ()),
    }


def write_snapshot(directory: str, state: Dict[str, Any],
                   last_seq: int) -> str:
    """Atomically write one snapshot document; returns its path."""
    body = json.dumps(state, sort_keys=True, separators=(",", ":"))
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "last_seq": last_seq,
        "checksum": zlib.crc32(body.encode("utf-8")),
        "state": body,
    }
    path = os.path.join(directory, snapshot_name(last_seq))
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_snapshot(path: str) -> Tuple[int, Dict[str, Any]]:
    """Load and verify one snapshot; returns ``(last_seq, state)``."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError as exc:
            raise StorageError(
                f"snapshot {path} is not readable JSON (torn "
                f"write?): {exc}") from exc
    if not isinstance(document, dict):
        raise StorageError(f"{path} is not a middlewhere snapshot")
    if document.get("format") != SNAPSHOT_FORMAT:
        raise StorageError(f"{path} is not a middlewhere snapshot")
    if document.get("version") != SNAPSHOT_VERSION:
        raise StorageError(
            f"unsupported snapshot version {document.get('version')!r}")
    body = document["state"]
    if zlib.crc32(body.encode("utf-8")) != document["checksum"]:
        raise StorageError(f"snapshot {path} failed its checksum")
    return int(document["last_seq"]), json.loads(body)


def list_snapshots(directory: str) -> List[str]:
    """Snapshot paths in the directory, oldest first."""
    out = []
    for name in os.listdir(directory):
        if _SNAPSHOT_RE.match(name):
            out.append(os.path.join(directory, name))
    return sorted(out)


def load_latest_snapshot(directory: str
                         ) -> Optional[Tuple[int, Dict[str, Any]]]:
    """The newest snapshot that verifies, or ``None``.

    Unreadable / torn / checksum-failing candidates are skipped —
    newest first — so a kill mid-snapshot degrades to the previous
    snapshot plus a longer WAL replay, never to garbage.
    """
    for path in reversed(list_snapshots(directory)):
        try:
            return read_snapshot(path)
        except (StorageError, ValueError, OSError, KeyError):
            continue
    return None


def restore_state(db, state: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Load a captured state into a fresh database; returns the registry.

    The database must have the snapshot's world loaded and empty
    tables.  Rows are restored verbatim (same reading ids, same
    ``moving`` flags) with triggers suppressed, the id allocator and
    movement history are reinstated, and the per-object reading-support
    MBRs are *recomputed from the live rows* — the grow-only union of
    the original run is deliberately not persisted, so region-query
    pruning after recovery starts from the tightest sound bound (see
    ``SpatialDatabase.rebuild_reading_support``).
    """
    from repro.geometry import Rect

    for item in state.get("sensor_specs", ()):
        db.register_sensor(
            sensor_id=item["sensor_id"],
            sensor_type=item["sensor_type"],
            confidence=item["confidence"],
            time_to_live=item["time_to_live"],
            spec=decode_spec(item["spec"]),
        )
    for item in state.get("sensor_readings", ()):
        db.sensor_readings.insert(decode_reading_row(item),
                                  fire_triggers=False)
    with db._ingest_lock:
        db._next_reading_id = int(state.get("next_reading_id", 1))
        for item in state.get("history", ()):
            key = (item["sensor_id"], item["object_id"])
            db._history[key] = [(t, Rect(*rect))
                                for t, rect in item["entries"]]
    db.rebuild_reading_support()
    return list(state.get("registry", ()))
