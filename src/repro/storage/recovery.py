"""Crash recovery: snapshot restore + WAL replay.

:func:`recover` rebuilds a spatial database from a WAL directory
alone: load the newest snapshot that verifies, restore its table
state, then replay every WAL record with ``seq`` greater than the
snapshot's ``last_seq``.  Replay is *logical* — each record is one
operation from :mod:`repro.storage.records` applied through the same
database mutators the live system used — and insert records carry the
fully materialized row (allocated reading id, computed ``moving``
flag), so the recovered table is fingerprint-identical to the
pre-crash survivor, not merely equivalent.

A torn tail on the log (a kill mid-append) is stepped over; interior
corruption raises :class:`~repro.errors.WalCorruptionError` because a
silently reordered history would be worse than a loud failure.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import StorageError
from repro.storage import records as rec
from repro.storage.manager import WAL_NAME
from repro.storage.snapshot import load_latest_snapshot, restore_state
from repro.storage.wal import scan_wal


@dataclass
class RecoveredState:
    """What :func:`recover` hands back.

    ``registry`` holds the durable trigger/subscription records that
    were live at the crash; :meth:`subscriptions` and :meth:`triggers`
    split it.  ``replayed`` counts WAL records applied on top of the
    snapshot; ``torn_bytes`` is the size of the discarded torn tail
    (non-zero exactly when the crash hit mid-append).
    """

    db: Any
    registry: List[Dict[str, Any]] = field(default_factory=list)
    snapshot_seq: int = 0
    last_seq: int = 0
    replayed: int = 0
    torn_bytes: int = 0

    def subscriptions(self) -> List[Dict[str, Any]]:
        return [r for r in self.registry
                if r["op"] in (rec.OP_SUBSCRIBE, rec.OP_SUBSCRIBE_PROXIMITY)]

    def triggers(self) -> List[Dict[str, Any]]:
        return [r for r in self.registry
                if r["op"] == rec.OP_CREATE_TRIGGER]


def recover(wal_dir: str) -> RecoveredState:
    """Rebuild a database from a WAL directory.

    Needs at least one readable snapshot (the manager cuts a baseline
    one at attach time, so any directory it ever managed has one —
    the world model does not travel through the WAL).
    """
    from repro.model.serialize import world_from_dict
    from repro.spatialdb import SpatialDatabase

    wal_dir = str(wal_dir)
    loaded = load_latest_snapshot(wal_dir)
    if loaded is None:
        raise StorageError(
            f"{wal_dir} has no readable snapshot; cannot rebuild the "
            f"world model from the WAL alone")
    snapshot_seq, state = loaded
    db = SpatialDatabase(world_from_dict(state["world"]))
    registry = restore_state(db, state)

    wal_path = os.path.join(wal_dir, WAL_NAME)
    replayed = 0
    torn_bytes = 0
    last_seq = snapshot_seq
    if os.path.exists(wal_path):
        scan = scan_wal(wal_path)
        torn_bytes = scan.torn_bytes
        for seq, payload in scan.records:
            if seq <= snapshot_seq:
                continue  # already inside the snapshot
            apply_op(db, rec.decode_op(payload), registry)
            replayed += 1
            last_seq = seq
    # Re-derive the pruning metadata from what actually survived:
    # replay applied deletes too, so the tightest sound support bound
    # is the union over the live rows.
    db.rebuild_reading_support()
    return RecoveredState(db=db, registry=registry,
                          snapshot_seq=snapshot_seq, last_seq=last_seq,
                          replayed=replayed, torn_bytes=torn_bytes)


def apply_op(db, op: Dict[str, Any],
             registry: Optional[List[Dict[str, Any]]] = None) -> None:
    """Apply one logical WAL operation to a journal-less database."""
    if db.journal is not None:
        raise StorageError(
            "replay requires a journal-less database (re-logging the "
            "log would double history)")
    name = op["op"]
    if name == rec.OP_REGISTER_SENSOR:
        db.register_sensor(
            sensor_id=op["sensor_id"],
            sensor_type=op["sensor_type"],
            confidence=op["confidence"],
            time_to_live=op["time_to_live"],
            spec=rec.decode_spec(op["spec"]),
        )
    elif name == rec.OP_INSERT_READING:
        db.apply_logged_insert(rec.decode_reading_row(op["row"]))
    elif name in (rec.OP_EXPIRE, rec.OP_PURGE):
        # Deletes are logged with the exact doomed ids, so replay never
        # re-evaluates a time/TTL predicate whose answer could depend
        # on how live threads interleaved around the delete.
        doomed = set(op["reading_ids"])
        if doomed:
            db.sensor_readings.delete(
                lambda row: row["reading_id"] in doomed)
    elif name == rec.OP_CREATE_TRIGGER:
        _registry_apply(registry, op)
    elif name in (rec.OP_SUBSCRIBE, rec.OP_SUBSCRIBE_PROXIMITY):
        _registry_apply(registry, op)
    elif name == rec.OP_DROP_TRIGGER:
        if registry is not None:
            registry[:] = [r for r in registry
                           if not (r["op"] == rec.OP_CREATE_TRIGGER and
                                   r["trigger_id"] == op["trigger_id"])]
    elif name == rec.OP_UNSUBSCRIBE:
        if registry is not None:
            registry[:] = [
                r for r in registry
                if r.get("subscription_id") != op["subscription_id"]]
    else:  # pragma: no cover - encode_op already validates names
        raise StorageError(f"unknown WAL operation {name!r}")


def _registry_apply(registry: Optional[List[Dict[str, Any]]],
                    op: Dict[str, Any]) -> None:
    if registry is not None:
        registry.append(dict(op))


def readings_fingerprint(db) -> str:
    """A deterministic digest of the sensor-readings table.

    Two databases agree on this hash iff they hold exactly the same
    rows (ids, geometry, flags — ``repr`` keeps float identity) —
    the chaos suite's survivor-vs-recovered oracle.
    """
    lines = []
    for row in sorted(db.sensor_readings.select(),
                      key=lambda r: r["reading_id"]):
        lines.append("|".join(
            f"{key}={row[key]!r}" for key in sorted(row)))
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
