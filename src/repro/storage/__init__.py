"""Durable storage for the spatial database (WAL + snapshots + recovery).

See ``docs/DURABILITY.md`` for the design: the write-ahead contract at
the spatial-DB seam, deterministic fsync policies, atomic snapshots,
retention compaction and the chaos-verified recovery procedure.
"""

from repro.storage.manager import (
    ARCHIVE_NAME,
    POINT_COMPACT,
    POINT_SNAPSHOT,
    WAL_NAME,
    DurabilityManager,
    DurabilityMode,
)
from repro.storage.recovery import (
    RecoveredState,
    apply_op,
    readings_fingerprint,
    recover,
)
from repro.storage.snapshot import (
    capture_state,
    list_snapshots,
    load_latest_snapshot,
    read_snapshot,
    restore_state,
    write_snapshot,
)
from repro.storage.wal import (
    FSYNC_ALWAYS,
    FSYNC_NEVER,
    POINT_APPEND,
    POINT_FSYNC,
    WalScan,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "ARCHIVE_NAME",
    "DurabilityManager",
    "DurabilityMode",
    "FSYNC_ALWAYS",
    "FSYNC_NEVER",
    "POINT_APPEND",
    "POINT_COMPACT",
    "POINT_FSYNC",
    "POINT_SNAPSHOT",
    "RecoveredState",
    "WAL_NAME",
    "WalScan",
    "WriteAheadLog",
    "apply_op",
    "capture_state",
    "list_snapshots",
    "load_latest_snapshot",
    "read_snapshot",
    "readings_fingerprint",
    "recover",
    "restore_state",
    "scan_wal",
    "write_snapshot",
]
