"""Logical mutation records and their wire codec.

Every mutation at the spatial-database seam — reading inserts, forced
expiry, TTL purges, sensor registration, trigger and subscription
create/drop — is captured as one *logical operation* dict and encoded
to a compact, deterministic JSON payload for the write-ahead log.
Replaying the operations in log order against a fresh database
reconstructs the exact table state (see
:mod:`repro.storage.recovery`).

The codec round-trips every value the spatial schemas carry: ``Rect``,
``Point``, ``SensorSpec`` (including its temporal degradation
function) and the plain scalars.  Payload bytes are deterministic —
``sort_keys`` + fixed separators — so the same operation always
produces the same record, which the chaos suite's byte-identity
oracles rely on.

One exception to "everything is JSON": the ``insert_reading`` op —
the only one on the ingestion hot path — also has a packed binary
wire form (magic byte ``0x01``; JSON ops always start with ``{``)
that the pipeline's journaled inserts use.  It is equally
deterministic and :func:`decode_op` transparently dispatches between
the two, so replay never cares which form a record took.
"""

from __future__ import annotations

import json
import struct
from json.encoder import encode_basestring_ascii as _escape
from typing import Any, Dict, List, Optional, Tuple

from repro.core import SensorSpec
from repro.core.tdf import ConstantTDF, ExponentialTDF, LinearTDF, StepTDF
from repro.errors import StorageError
from repro.geometry import Point, Rect

# Operation names (the "op" key of every record).
OP_REGISTER_SENSOR = "register_sensor"
OP_INSERT_READING = "insert_reading"
OP_EXPIRE = "expire_object_readings"
OP_PURGE = "purge_expired"
OP_CREATE_TRIGGER = "create_trigger"
OP_DROP_TRIGGER = "drop_trigger"
OP_SUBSCRIBE = "subscribe"
OP_UNSUBSCRIBE = "unsubscribe"
OP_SUBSCRIBE_PROXIMITY = "subscribe_proximity"

ALL_OPS = (
    OP_REGISTER_SENSOR,
    OP_INSERT_READING,
    OP_EXPIRE,
    OP_PURGE,
    OP_CREATE_TRIGGER,
    OP_DROP_TRIGGER,
    OP_SUBSCRIBE,
    OP_UNSUBSCRIBE,
    OP_SUBSCRIBE_PROXIMITY,
)


# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------

def encode_rect(rect: Optional[Rect]) -> Optional[List[float]]:
    if rect is None:
        return None
    return [rect.min_x, rect.min_y, rect.max_x, rect.max_y]


def decode_rect(data: Optional[List[float]]) -> Optional[Rect]:
    return None if data is None else Rect(*data)


def encode_point(p: Optional[Point]) -> Optional[List[float]]:
    return None if p is None else [p.x, p.y, p.z]


def decode_point(data: Optional[List[float]]) -> Optional[Point]:
    return None if data is None else Point(*data)


# ----------------------------------------------------------------------
# Sensor specs (with their tdf)
# ----------------------------------------------------------------------

def encode_tdf(tdf: Any) -> Dict[str, Any]:
    if isinstance(tdf, ConstantTDF):
        return {"kind": "constant"}
    if isinstance(tdf, LinearTDF):
        return {"kind": "linear", "zero_at": tdf.zero_at}
    if isinstance(tdf, ExponentialTDF):
        return {"kind": "exponential", "half_life": tdf.half_life}
    if isinstance(tdf, StepTDF):
        return {"kind": "step", "steps": [list(s) for s in tdf.steps]}
    raise StorageError(
        f"tdf {type(tdf).__name__} is not WAL-serializable")


def decode_tdf(data: Dict[str, Any]) -> Any:
    kind = data.get("kind")
    if kind == "constant":
        return ConstantTDF()
    if kind == "linear":
        return LinearTDF(data["zero_at"])
    if kind == "exponential":
        return ExponentialTDF(data["half_life"])
    if kind == "step":
        return StepTDF([tuple(s) for s in data["steps"]])
    raise StorageError(f"unknown tdf kind {kind!r}")


def encode_spec(spec: Optional[SensorSpec]) -> Optional[Dict[str, Any]]:
    if spec is None:
        return None
    if not isinstance(spec, SensorSpec):
        raise StorageError(
            f"sensor spec {type(spec).__name__} is not WAL-serializable")
    return {
        "sensor_type": spec.sensor_type,
        "carry_probability": spec.carry_probability,
        "detection_probability": spec.detection_probability,
        "misident_probability": spec.misident_probability,
        "z_area_scaled": spec.z_area_scaled,
        "resolution": spec.resolution,
        "time_to_live": spec.time_to_live,
        "tdf": encode_tdf(spec.tdf),
    }


def decode_spec(data: Optional[Dict[str, Any]]) -> Optional[SensorSpec]:
    if data is None:
        return None
    return SensorSpec(
        sensor_type=data["sensor_type"],
        carry_probability=data["carry_probability"],
        detection_probability=data["detection_probability"],
        misident_probability=data["misident_probability"],
        z_area_scaled=data["z_area_scaled"],
        resolution=data["resolution"],
        time_to_live=data["time_to_live"],
        tdf=decode_tdf(data["tdf"]),
    )


# ----------------------------------------------------------------------
# Sensor-reading rows
# ----------------------------------------------------------------------

def encode_reading_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """A sensor-readings table row as plain JSON values."""
    out = dict(row)
    out["rect"] = encode_rect(row["rect"])
    out["location"] = encode_point(row.get("location"))
    return out


def decode_reading_row(data: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(data)
    out["rect"] = decode_rect(data["rect"])
    out["location"] = decode_point(data.get("location"))
    return out


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

def encode_op(op: Dict[str, Any]) -> bytes:
    """One logical operation to deterministic JSON bytes."""
    name = op.get("op")
    if name not in ALL_OPS:
        raise StorageError(f"unknown WAL operation {name!r}")
    return json.dumps(op, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def encode_insert_op(row: Dict[str, Any]) -> bytes:
    """Fast path for the hot ``insert_reading`` record.

    Byte-identical to ``encode_op({"op": OP_INSERT_READING, "row":
    encode_reading_row(row)})`` — the keys are emitted in sorted order,
    numbers as their ``repr`` (what ``json.dumps`` emits for int and
    finite float), strings through json's own C escaper — but without
    building the intermediate dicts.  The pipeline journals one of
    these per fused reading, so this sits on the ingestion hot path
    under the database's ingest lock (see benchmarks/test_wal_overhead).
    """
    rect = row["rect"]
    loc = row["location"]
    if loc is None:
        loc_json = "null"
    else:
        loc_json = f"[{loc.x!r},{loc.y!r},{loc.z!r}]"
    return (
        '{"op":"insert_reading","row":{'
        f'"detection_radius":{row["detection_radius"]!r},'
        f'"detection_time":{row["detection_time"]!r},'
        f'"glob_prefix":{_escape(row["glob_prefix"])},'
        f'"location":{loc_json},'
        f'"mobile_object_id":{_escape(row["mobile_object_id"])},'
        f'"moving":{"true" if row["moving"] else "false"},'
        f'"reading_id":{row["reading_id"]!r},'
        f'"rect":[{rect.min_x!r},{rect.min_y!r},'
        f'{rect.max_x!r},{rect.max_y!r}],'
        f'"sensor_id":{_escape(row["sensor_id"])},'
        f'"sensor_type":{_escape(row["sensor_type"])}'
        "}}").encode("utf-8")


# repr() of a float is ~0.3us and an insert record carries up to nine
# of them; sensor coordinates and detection times quantize heavily in
# practice, so a small memo pays for itself on the ingestion hot path.
# Floats only — int keys would collide (hash(1) == hash(1.0) but json
# renders them differently), and zeros stay out because 0.0 and -0.0
# are one dict key with two renderings.  Cleared wholesale when full.
_FLOAT_REPR_MEMO: Dict[float, str] = {}


def _num(value: Any) -> str:
    """json.dumps' rendering of one int or finite float."""
    if type(value) is float and value:
        memo = _FLOAT_REPR_MEMO
        out = memo.get(value)
        if out is None:
            if len(memo) >= 16384:
                memo.clear()
            out = memo[value] = repr(value)
        return out
    return repr(value)


# ----------------------------------------------------------------------
# Hot-path insert wire form
# ----------------------------------------------------------------------
#
# The pipeline journals one insert record per fused reading, so this
# op — alone — gets a packed binary wire form alongside the JSON one:
# a magic first byte (JSON ops always start with '{'), the nine
# numeric fields as IEEE doubles, then the four strings
# length-prefixed.  struct-packing doubles skips the dominant cost of
# the JSON form (repr() of every float) and roughly halves the payload
# the checksum and the write syscalls see.  ``decode_op`` dispatches
# on the first byte, so both forms replay identically.
#
# The binary form requires every numeric to be a genuine float (struct
# '<d' would silently turn the JSON form's ints into 1.0-style floats
# and break fingerprint identity) — ``encode_insert_parts`` falls back
# to the JSON form otherwise.

_BIN_INSERT_MAGIC = 0x01
# magic, detection_radius, detection_time, has_location, location xyz,
# rect (min_x, min_y, max_x, max_y), then the four string lengths.
_BIN_HEAD = struct.Struct("<BddB3d4d4H")
# moving, reading_id — the in-lock fields, spliced on by assemble.
_BIN_TAIL = struct.Struct("<BQ")

_ZERO3 = (0.0, 0.0, 0.0)


def encode_insert_parts(sensor_id: str, glob_prefix: str,
                        sensor_type: str, mobile_object_id: str,
                        location: Optional[Point],
                        detection_radius: float, rect: Rect,
                        detection_time: float) -> Tuple[bytes, bytes]:
    """Pre-encode an insert record around its state-dependent fields.

    ``reading_id`` and ``moving`` are only known inside the database's
    ingest lock, but they are the *only* row fields that are — so the
    rest of the payload is encoded up front, outside the lock, and
    :func:`assemble_insert_op` splices the two values in.  Shrinking
    the in-lock encode to a single small struct pack is what keeps
    four pipeline workers from convoying on the ingest lock
    (benchmarks/test_wal_overhead.py).

    Returns an opaque ``(kind, head)``-style parts tuple for
    :func:`assemble_insert_op`.
    """
    mnx, mny, mxx, mxy = rect.min_x, rect.min_y, rect.max_x, rect.max_y
    loc = _ZERO3 if location is None else (location.x, location.y,
                                           location.z)
    if (type(detection_radius) is float and type(detection_time) is float
            and type(mnx) is float and type(mny) is float
            and type(mxx) is float and type(mxy) is float
            and type(loc[0]) is float and type(loc[1]) is float
            and type(loc[2]) is float):
        s1 = sensor_id.encode("utf-8")
        s2 = glob_prefix.encode("utf-8")
        s3 = sensor_type.encode("utf-8")
        s4 = mobile_object_id.encode("utf-8")
        if max(len(s1), len(s2), len(s3), len(s4)) < 0x10000:
            head = _BIN_HEAD.pack(
                _BIN_INSERT_MAGIC, detection_radius, detection_time,
                0 if location is None else 1, loc[0], loc[1], loc[2],
                mnx, mny, mxx, mxy,
                len(s1), len(s2), len(s3), len(s4)) + s1 + s2 + s3 + s4
            return (b"", head)
    # JSON fallback: int-typed coordinates or oversized strings.
    num = _num
    if location is None:
        loc_json = "null"
    else:
        loc_json = f"[{num(location.x)},{num(location.y)},{num(location.z)}]"
    json_head = (
        '{"op":"insert_reading","row":{'
        f'"detection_radius":{num(detection_radius)},'
        f'"detection_time":{num(detection_time)},'
        f'"glob_prefix":{_escape(glob_prefix)},'
        f'"location":{loc_json},'
        f'"mobile_object_id":{_escape(mobile_object_id)},'
        '"moving":').encode("utf-8")
    json_tail = (
        f',"rect":[{num(mnx)},{num(mny)},'
        f'{num(mxx)},{num(mxy)}],'
        f'"sensor_id":{_escape(sensor_id)},'
        f'"sensor_type":{_escape(sensor_type)}'
        "}}").encode("utf-8")
    return (json_head, json_tail)


def assemble_insert_op(parts: Tuple[bytes, bytes], reading_id: int,
                       moving: bool) -> bytes:
    """Splice the in-lock fields into a pre-encoded insert record."""
    head, tail = parts
    if not head:  # binary form: tail is the packed head block
        return tail + _BIN_TAIL.pack(1 if moving else 0, reading_id)
    return (head + (b"true" if moving else b"false")
            + b',"reading_id":%d' % reading_id + tail)


def _decode_binary_insert(payload: bytes) -> Dict[str, Any]:
    try:
        (_, radius, dtime, has_loc, lx, ly, lz, mnx, mny, mxx, mxy,
         n1, n2, n3, n4) = _BIN_HEAD.unpack_from(payload, 0)
        offset = _BIN_HEAD.size
        strings = []
        for length in (n1, n2, n3, n4):
            strings.append(
                payload[offset:offset + length].decode("utf-8"))
            offset += length
        moving, reading_id = _BIN_TAIL.unpack_from(payload, offset)
        if offset + _BIN_TAIL.size != len(payload):
            raise StorageError(
                f"binary insert record has {len(payload)} bytes, "
                f"expected {offset + _BIN_TAIL.size}")
    except (struct.error, UnicodeDecodeError) as exc:
        raise StorageError(
            f"undecodable binary insert record: {exc}") from exc
    sensor_id, glob_prefix, sensor_type, mobile_object_id = strings
    return {
        "op": OP_INSERT_READING,
        "row": {
            "reading_id": reading_id,
            "sensor_id": sensor_id,
            "glob_prefix": glob_prefix,
            "sensor_type": sensor_type,
            "mobile_object_id": mobile_object_id,
            "location": None if not has_loc else [lx, ly, lz],
            "detection_radius": radius,
            "rect": [mnx, mny, mxx, mxy],
            "detection_time": dtime,
            "moving": bool(moving),
        },
    }


def decode_op(payload: bytes) -> Dict[str, Any]:
    if payload[:1] == b"\x01":  # hot-path binary insert form
        return _decode_binary_insert(bytes(payload))
    try:
        op = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"undecodable WAL payload: {exc}") from exc
    if not isinstance(op, dict) or op.get("op") not in ALL_OPS:
        raise StorageError(f"malformed WAL operation: {op!r}")
    return op
