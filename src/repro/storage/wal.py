"""The append-only write-ahead log.

Record framing::

    [seq: u64le][length: u32le][crc32(payload): u32le][payload bytes]

``seq`` is a monotonically increasing record number that survives
compaction (a fresh segment continues the numbering), so snapshots can
say "everything up to seq N is already applied" and replay skips the
prefix.  The scanner tolerates a *torn tail* — a record cut short by a
kill mid-append — by stopping cleanly at the first incomplete or
checksum-failing record at the end of the file; corruption *before*
the tail raises :class:`~repro.errors.WalCorruptionError` instead,
because silently dropping interior history would un-order replay.

Fsync policies (all deterministic — no wall-clock batching):

* ``always``   — fsync after every append (the STRICT durability mode).
* ``batch:N``  — fsync every N appends plus on explicit :meth:`sync`
  (the BUFFERED mode's group commit; the un-synced window is the
  crash-exposure the stats report).
* ``never``    — fsync only on :meth:`sync` / :meth:`close`.

The log is thread-safe: pipeline workers append concurrently, and the
append lock is what serializes WAL order.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulatedCrash, StorageError, WalCorruptionError

_HEADER = struct.Struct("<QII")  # seq, payload length, crc32

FSYNC_ALWAYS = "always"
FSYNC_NEVER = "never"
_FSYNC_BATCH_PREFIX = "batch:"

# Fault-hook kill points (see repro.faults.WalCrashInjector).
POINT_APPEND = "append"
POINT_FSYNC = "fsync"

FaultHook = Callable[[str, int], None]


def _parse_policy(policy: str) -> int:
    """Policy string to a sync interval: 1=always, 0=never, N=batch."""
    if policy == FSYNC_ALWAYS:
        return 1
    if policy == FSYNC_NEVER:
        return 0
    if policy.startswith(_FSYNC_BATCH_PREFIX):
        try:
            interval = int(policy[len(_FSYNC_BATCH_PREFIX):])
        except ValueError:
            interval = 0
        if interval > 0:
            return interval
    raise StorageError(
        f"unknown fsync policy {policy!r}; expected 'always', 'never' "
        f"or 'batch:N'")


class WriteAheadLog:
    """One append-only segment file with checksummed records.

    Args:
        path: the segment file (created if missing, appended if not).
        fsync_policy: ``always`` / ``never`` / ``batch:N``.
        start_seq: first sequence number to assign when the file is
            empty (compaction hands the successor segment the old
            log's next seq so numbering never restarts).
        fault_hook: optional kill-point hook ``(point, seq)``; raising
            :class:`~repro.errors.SimulatedCrash` at ``append`` leaves
            a torn partial record on disk, at ``fsync`` it leaves the
            record written but the group commit unacknowledged.
    """

    def __init__(self, path: str, fsync_policy: str = FSYNC_ALWAYS,
                 start_seq: int = 1,
                 fault_hook: Optional[FaultHook] = None) -> None:
        self.path = str(path)
        self._sync_interval = _parse_policy(fsync_policy)
        self.fsync_policy = fsync_policy
        self.fault_hook = fault_hook
        self._lock = threading.Lock()
        existing = scan_wal(self.path) if os.path.exists(self.path) else None
        if existing is not None and existing.torn_bytes:
            # Repair a torn tail before appending: new records written
            # after torn bytes would read as interior corruption.
            size = os.path.getsize(self.path) - existing.torn_bytes
            with open(self.path, "r+b") as handle:
                handle.truncate(size)
        if existing is not None and existing.records:
            self._next_seq = existing.records[-1][0] + 1
        else:
            self._next_seq = start_seq
        self._file = open(self.path, "ab")
        self._appended = 0
        self._since_sync = 0
        self._synced_seq = self._next_seq - 1
        self._last_seq = self._next_seq - 1
        self._closed = False

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Durably append one record; returns its sequence number.

        Under a ``batch:N`` policy the record may sit in the un-synced
        window until the Nth append or an explicit :meth:`sync`; the
        window size is what :meth:`unsynced_count` reports.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("WAL payloads must be bytes")
        with self._lock:
            if self._closed:
                raise StorageError(f"WAL {self.path} is closed")
            seq = self._next_seq
            record = _HEADER.pack(seq, len(payload),
                                  zlib.crc32(payload)) + payload
            hook = self.fault_hook
            if hook is not None:
                try:
                    hook(POINT_APPEND, seq)
                except SimulatedCrash:
                    # A kill mid-append: some prefix of the record made
                    # it to disk.  Leave the torn bytes for the scanner
                    # to step over, then die.
                    self._file.write(record[:max(1, len(record) // 2)])
                    self._file.flush()
                    self._closed = True
                    raise
            self._file.write(record)
            self._next_seq = seq + 1
            self._last_seq = seq
            self._appended += 1
            self._since_sync += 1
            if hook is not None:
                try:
                    hook(POINT_FSYNC, seq)
                except SimulatedCrash:
                    # A kill between write and group commit: the bytes
                    # are on disk (a kill does not drop the page cache)
                    # but the commit was never acknowledged.
                    self._file.flush()
                    self._closed = True
                    raise
            if self._sync_interval and \
                    self._since_sync >= self._sync_interval:
                self._sync_locked()
            return seq

    def _sync_locked(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._synced_seq = self._last_seq
        self._since_sync = 0

    def sync(self) -> None:
        """Force a group commit of every appended record."""
        with self._lock:
            if not self._closed:
                self._sync_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._sync_locked()
            self._file.close()
            self._closed = True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended record (0 = none)."""
        with self._lock:
            return self._last_seq

    @property
    def synced_seq(self) -> int:
        """Newest record covered by an fsync."""
        with self._lock:
            return self._synced_seq

    def unsynced_count(self) -> int:
        """Records appended but not yet group-committed — the crash
        window a power loss (not a mere kill) could cost."""
        with self._lock:
            return self._last_seq - self._synced_seq

    def appended_count(self) -> int:
        with self._lock:
            return self._appended

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


@dataclass
class WalScan:
    """Everything a replay needs from one segment file.

    ``records`` holds ``(seq, payload)`` in file order; ``torn_bytes``
    counts trailing bytes discarded as an incomplete final record.
    """

    records: List[Tuple[int, bytes]]
    torn_bytes: int

    @property
    def last_seq(self) -> int:
        return self.records[-1][0] if self.records else 0


def scan_wal(path: str) -> WalScan:
    """Read every complete, checksum-valid record of a segment.

    A short or checksum-failing record at the end of the file is the
    torn tail of a crash and is silently dropped; the same defect
    followed by *more* readable data is interior corruption and raises
    :class:`~repro.errors.WalCorruptionError`.
    """
    records: List[Tuple[int, bytes]] = []
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            break  # torn header
        seq, length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if body_start + length > size:
            break  # torn payload
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            if body_start + length < size:
                raise WalCorruptionError(
                    f"checksum mismatch at offset {offset} of {path} "
                    f"(seq {seq}) with readable data after it")
            break  # checksum-torn tail
        if records and seq != records[-1][0] + 1:
            raise WalCorruptionError(
                f"non-contiguous seq {seq} after {records[-1][0]} "
                f"in {path}")
        records.append((seq, payload))
        offset = body_start + length
    return WalScan(records=records, torn_bytes=size - offset)
