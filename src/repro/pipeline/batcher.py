"""Per-object coalescing of queued readings into fusion batches.

A burst of readings for one person — a Ubisense cell fixing a tag every
second while an RF station and a card reader also report — should cost
*one* fusion pass, not one per reading.  The batcher forms per-object
batches from the intake using a time/count window:

* a batch is released as soon as an object has ``max_batch`` readings
  queued, or
* once its oldest queued reading has waited ``max_wait`` seconds, or
* immediately during a drain (``force_flush``).

At most one batch per object is in flight at a time, so readings are
flushed to the spatial database in arrival order and per-object fusion
state never races between workers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.errors import PipelineError
from repro.pipeline.intake import IntakeQueue, QueuedReading

Clock = Callable[[], float]


@dataclass(frozen=True)
class Batch:
    """One object's coalesced readings, ready for a single fusion pass."""

    object_id: str
    entries: List[QueuedReading]
    created_at: float

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def detection_time(self) -> float:
        """The batch's fusion timestamp: its newest detection time."""
        return max(entry.reading.detection_time for entry in self.entries)


class Batcher:
    """Turns the intake's per-object queues into ready batches.

    Args:
        intake: the bounded intake to drain.
        max_batch: release a batch once an object has this many queued.
        max_wait: release a partial batch once its oldest reading has
            waited this long (seconds); the latency/throughput knob.
        clock: wall-clock source (injectable for tests).
    """

    def __init__(self, intake: IntakeQueue, max_batch: int = 16,
                 max_wait: float = 0.05,
                 clock: Optional[Clock] = None) -> None:
        if max_batch <= 0:
            raise PipelineError("max_batch must be positive")
        if max_wait < 0.0:
            raise PipelineError("max_wait must be >= 0")
        self.intake = intake
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._in_flight: Set[str] = set()
        self._force_flush = threading.Event()
        self.batches_formed = 0

    # ------------------------------------------------------------------
    # Flush control (drain path)
    # ------------------------------------------------------------------

    def force_flush(self, on: bool = True) -> None:
        """Make every pending reading immediately batchable."""
        if on:
            self._force_flush.set()
        else:
            self._force_flush.clear()
        self.intake.notify_consumers()

    # ------------------------------------------------------------------
    # Batch formation
    # ------------------------------------------------------------------

    def _pick(self) -> tuple:
        """The next ready object (honouring in-flight), plus the
        earliest instant a queued-but-waiting object's ``max_wait``
        window expires (``inf`` if nothing is waiting on time)."""
        now = self.clock()
        flush = self._force_flush.is_set()
        best: Optional[str] = None
        best_oldest = float("inf")
        wake_at = float("inf")
        for object_id, (count, oldest) in self.intake.snapshot().items():
            if object_id in self._in_flight:
                continue
            ready = (flush or count >= self.max_batch
                     or now - oldest >= self.max_wait)
            if ready:
                if oldest < best_oldest:
                    best = object_id
                    best_oldest = oldest
            elif oldest + self.max_wait < wake_at:
                wake_at = oldest + self.max_wait
        return best, wake_at

    def next_batch(self, timeout: float = 0.05) -> Optional[Batch]:
        """The next ready batch, or ``None`` if none within ``timeout``.

        The caller owns the returned batch's object until it calls
        :meth:`complete` — no other worker will be handed that object.
        """
        deadline = self.clock() + timeout
        while True:
            # Snapshot the intake's change counter *before* scanning, so
            # a reading that arrives mid-scan cuts the wait short rather
            # than being slept through.
            version = self.intake.version()
            with self._lock:
                candidate, wake_at = self._pick()
                if candidate is not None:
                    # Claim before taking: drain observes either queued
                    # entries or an in-flight object, never a gap.
                    self._in_flight.add(candidate)
                    entries = self.intake.take(candidate, self.max_batch)
                    if not entries:
                        self._in_flight.discard(candidate)
                        continue
                    self.batches_formed += 1
                    return Batch(candidate, entries, self.clock())
            now = self.clock()
            remaining = deadline - now
            if remaining <= 0.0:
                return None
            # Sleep until something changes (a put, a released object,
            # a force-flush) or the earliest max_wait window expires —
            # event-driven, so an idle or mid-window worker costs no
            # polling wakeups.
            tick = min(remaining, max(wake_at - now, 1e-4))
            self.intake.wait_for_change(version, tick)

    def complete(self, object_id: str) -> None:
        """Release an object so its next batch can be formed."""
        with self._lock:
            self._in_flight.discard(object_id)
        self.intake.notify_consumers()

    def in_flight_count(self) -> int:
        with self._lock:
            return len(self._in_flight)
