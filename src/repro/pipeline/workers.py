"""The worker pool that drains batches through fusion and notification.

Each worker loops: claim the next ready batch from the batcher, hand it
to the processor (the pipeline's flush→fuse→notify closure), then
release the batch's object so its next batch can form.  Workers never
die on a processor exception — the error is recorded and the loop
continues, because one malformed burst must not stall ingestion for
every other tracked object.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Tuple

from repro.errors import PipelineError
from repro.pipeline.batcher import Batch, Batcher

Processor = Callable[[Batch], None]


class WorkerPool:
    """A fixed pool of daemon threads draining the batcher.

    Args:
        batcher: source of ready batches.
        processor: called with each claimed batch; exceptions are
            captured into :attr:`errors` rather than killing the worker.
        count: number of worker threads.
        poll_interval: how long an idle worker waits per claim attempt.
    """

    def __init__(self, batcher: Batcher, processor: Processor,
                 count: int = 2, poll_interval: float = 0.05,
                 name: str = "pipeline-worker") -> None:
        if count <= 0:
            raise PipelineError("worker count must be positive")
        self.batcher = batcher
        self.processor = processor
        self.count = count
        self.poll_interval = poll_interval
        self.name = name
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.batches_processed = 0
        # (object_id, repr(exc)) for every processor crash.
        self.errors: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise PipelineError("worker pool already started")
        self._stop.clear()
        for i in range(self.count):
            thread = threading.Thread(target=self._run,
                                      name=f"{self.name}-{i + 1}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Signal workers to exit and join them."""
        self._stop.set()
        self.batcher.intake.notify_consumers()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    @property
    def running(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            batch = self.batcher.next_batch(self.poll_interval)
            if batch is None:
                continue
            try:
                self.processor(batch)
            except Exception as exc:  # noqa: BLE001 — keep draining
                with self._lock:
                    self.errors.append((batch.object_id, repr(exc)))
            finally:
                with self._lock:
                    self.batches_processed += 1
                self.batcher.complete(batch.object_id)
