"""The pipeline facade: configuration, wiring and graceful shutdown.

:class:`LocationPipeline` assembles the intake, batcher, worker pool,
retry policy and stats recorder into the asynchronous path between
location adapters (paper Section 6) and the Location Service (Section
4)::

    adapter._emit ──▶ submit() ──▶ IntakeQueue ──▶ Batcher ──▶ WorkerPool
                         │                                        │
                         ▼                                        ▼
                   DeadLetterQueue            flush → FusionEngine → notify

Workers flush each batch into the spatial database with triggers
suppressed (the pipeline replaces the per-insert trigger path), run one
fusion pass per batch, and hand the :class:`~repro.core.FusionResult`
to :meth:`LocationService.apply_fusion_result` for subscription
evaluation — optionally fanning the events out over an existing
:class:`~repro.orb.EventChannel`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core import SensorSpec
from repro.errors import IntakeOverflowError, PipelineError
from repro.geometry import Rect
from repro.pipeline.batcher import Batch, Batcher
from repro.pipeline.intake import (
    OVERFLOW_BLOCK,
    OVERFLOW_POLICIES,
    DeadLetter,
    DeadLetterQueue,
    IntakeQueue,
    PipelineReading,
    QueuedReading,
)
from repro.pipeline.retry import TRANSIENT_ERRORS, RetryPolicy, call_with_retry
from repro.pipeline.stats import PipelineStats, PipelineStatsRecorder
from repro.pipeline.workers import WorkerPool

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.orb.events import EventChannel
    from repro.service.location_service import LocationService

Clock = Callable[[], float]


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs for one :class:`LocationPipeline`.

    Attributes:
        queue_capacity: bounded intake size *per tracked object*.
        overflow_policy: ``block`` / ``drop-oldest`` / ``reject``.
        max_batch: fuse at most this many readings per object per pass.
        max_wait: release a partial batch after this many seconds.
        workers: worker-thread count.
        retry: backoff schedule for transient flush/notify failures.
        dead_letter_capacity: letters retained for inspection.
    """

    queue_capacity: int = 256
    overflow_policy: str = OVERFLOW_BLOCK
    max_batch: int = 16
    max_wait: float = 0.05
    workers: int = 2
    retry: RetryPolicy = RetryPolicy()
    dead_letter_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.overflow_policy not in OVERFLOW_POLICIES:
            raise PipelineError(
                f"unknown overflow policy {self.overflow_policy!r}")


class LocationPipeline:
    """Batched, back-pressured ingestion in front of a LocationService.

    Adapters with ``sink=pipeline`` emit here instead of writing the
    database directly; :meth:`submit` is also the public entry point
    for replayed traces and remote feeds.

    Args:
        service: the Location Service whose database and subscriptions
            the pipeline feeds.
        config: tuning knobs (see :class:`PipelineConfig`).
        channel: optional event channel; every subscription event
            produced by pipeline fusions is additionally published on
            it (remote fan-out of the fused stream).
        clock: wall-clock source for latency accounting (injectable).
    """

    def __init__(self, service: "LocationService",
                 config: Optional[PipelineConfig] = None,
                 channel: Optional["EventChannel"] = None,
                 clock: Optional[Clock] = None) -> None:
        self.service = service
        self.config = config if config is not None else PipelineConfig()
        self.channel = channel
        self.clock = clock if clock is not None else time.monotonic
        self.stats_recorder = PipelineStatsRecorder()
        self.dead_letters = DeadLetterQueue(
            self.config.dead_letter_capacity)
        self.intake = IntakeQueue(self.config.queue_capacity,
                                  self.config.overflow_policy,
                                  clock=self.clock)
        self.batcher = Batcher(self.intake, self.config.max_batch,
                               self.config.max_wait, clock=self.clock)
        self.workers = WorkerPool(self.batcher, self._process_batch,
                                  count=self.config.workers)
        # Fault-injection seam: called as hook(reading, attempt) before
        # each flush attempt; raising a transient error exercises the
        # retry path (see repro.faults.FaultPlan.attach_pipeline).
        self.flush_fault: Optional[
            Callable[[PipelineReading, int], None]] = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "LocationPipeline":
        if self._started:
            raise PipelineError("pipeline already started")
        self.workers.start()
        self._started = True
        return self

    def drain(self, timeout: float = 30.0) -> bool:
        """Flush every queued and in-flight reading; True when empty.

        Partial batches are force-released so nothing waits out its
        ``max_wait`` window.  Producers still submitting concurrently
        can keep a drain from settling — quiesce them first.
        """
        if not self._started and self.intake.total_pending() > 0:
            raise PipelineError("cannot drain a pipeline that never "
                                "started its workers")
        self.batcher.force_flush(True)
        try:
            deadline = self.clock() + timeout
            while self.clock() < deadline:
                if (self.intake.total_pending() == 0
                        and self.batcher.in_flight_count() == 0):
                    return True
                time.sleep(0.002)
            return False
        finally:
            self.batcher.force_flush(False)
            self._sync_journal()

    def _sync_journal(self) -> None:
        """Group-commit the durability WAL once the queues are quiet.

        A drain/stop is a consistency point: everything flushed into
        the database must also be fsynced in the log, closing the
        buffered mode's crash-exposure window (``stats()["unsynced"]``
        drops to zero).  No-op when durability is off or the journal
        already simulated a crash.
        """
        journal = getattr(self.service.db, "journal", None)
        if journal is not None:
            journal.sync()
            if hasattr(journal, "maybe_snapshot"):
                journal.maybe_snapshot()

    def stop(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: drain in-flight batches, then stop workers.

        Returns whether the drain completed inside ``timeout``.  After
        ``stop`` the pipeline refuses further submissions.
        """
        drained = self.drain(timeout) if self._started else True
        self.intake.close()
        self.workers.stop()
        self._started = False
        return drained

    def __enter__(self) -> "LocationPipeline":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Producer entry point (the adapters' sink target)
    # ------------------------------------------------------------------

    def submit(self, reading: PipelineReading) -> bool:
        """Accept one reading; False when it was dead-lettered.

        Malformed or uncalibratable readings go to the dead-letter
        queue with a reason.  Under the ``reject`` policy a full queue
        raises :class:`~repro.errors.IntakeOverflowError` (counted in
        ``rejected``); the other policies never raise.
        """
        reason = self._validate(reading)
        if reason is not None:
            self._dead_letter(reading, reason, accepted=True)
            return False
        try:
            dropped = self.intake.put(reading)
        except IntakeOverflowError:
            self.stats_recorder.incr("rejected")
            raise
        self.stats_recorder.incr("enqueued")
        if dropped:
            self.stats_recorder.incr("dropped", dropped)
        return True

    def _validate(self, reading: PipelineReading) -> Optional[str]:
        """A refusal reason, or ``None`` for a well-formed reading."""
        if not isinstance(reading, PipelineReading):
            return f"not a PipelineReading: {type(reading).__name__}"
        if not reading.object_id:
            return "missing mobile object id"
        if not reading.sensor_id:
            return "missing sensor id"
        if not isinstance(reading.rect, Rect):
            return "reading carries no rectangle"
        if not all(math.isfinite(v) for v in (reading.rect.min_x,
                                              reading.rect.min_y,
                                              reading.rect.max_x,
                                              reading.rect.max_y)):
            return "rectangle has non-finite bounds"
        if (not isinstance(reading.detection_time, (int, float))
                or not math.isfinite(reading.detection_time)
                or reading.detection_time < 0.0):
            return f"invalid detection time {reading.detection_time!r}"
        spec_row = self.service.db.sensor_specs.get(reading.sensor_id)
        if spec_row is None:
            return f"unknown sensor {reading.sensor_id!r}"
        if not isinstance(spec_row["spec"], SensorSpec):
            return (f"sensor {reading.sensor_id!r} has no calibrated "
                    f"spec; readings cannot be fused")
        return None

    def _dead_letter(self, reading: PipelineReading, reason: str,
                     accepted: bool = False) -> DeadLetter:
        if accepted:
            # Letters from submit() count as enqueued so totals
            # reconcile: enqueued = fused + dropped + dead_lettered.
            self.stats_recorder.incr("enqueued")
        self.stats_recorder.incr("dead_lettered")
        return self.dead_letters.add(reading, reason, self.clock())

    # ------------------------------------------------------------------
    # Worker-side processing
    # ------------------------------------------------------------------

    def _flush_entry(self, entry: QueuedReading) -> bool:
        """Persist one reading (with retry); False if dead-lettered.

        Only :data:`TRANSIENT_ERRORS` are retried.  Anything else is a
        programming error or poisoned reading: retrying it would never
        succeed, so it surfaces straight to the dead-letter queue with
        reason ``"unexpected"`` — and accounting still reconciles.
        """
        reading = entry.reading
        db = self.service.db
        attempt = [0]

        def insert() -> int:
            attempt[0] += 1
            hook = self.flush_fault
            if hook is not None:
                hook(reading, attempt[0])
            return db.insert_reading(
                sensor_id=reading.sensor_id,
                glob_prefix=reading.glob_prefix,
                sensor_type=reading.sensor_type,
                mobile_object_id=reading.object_id,
                rect=reading.rect,
                detection_time=reading.detection_time,
                location=reading.location,
                detection_radius=reading.detection_radius,
                fire_triggers=False,
            )

        try:
            call_with_retry(insert, self.config.retry,
                            on_retry=self._count_retry)
            return True
        except TRANSIENT_ERRORS as exc:
            self.dead_letters.add(reading,
                                  f"flush failed after retries: {exc}",
                                  self.clock())
        except Exception as exc:  # noqa: BLE001 — not retryable
            self.dead_letters.add(reading, f"unexpected: {exc!r}",
                                  self.clock())
        self.stats_recorder.incr("dead_lettered")
        return False

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats_recorder.incr("retries")

    def _process_batch(self, batch: Batch) -> None:
        """Flush → fuse once → evaluate subscriptions → record stats."""
        self.stats_recorder.incr("batches")
        flushed: List[QueuedReading] = [
            entry for entry in batch.entries if self._flush_entry(entry)]
        if not flushed:
            return
        at = max(entry.reading.detection_time for entry in flushed)
        self.stats_recorder.incr("fused", len(flushed))
        try:
            readings = self.service.normalized_readings(batch.object_id, at)
            result, from_cache = self.service.fuse_readings(
                batch.object_id, readings, at)
        except Exception:  # noqa: BLE001 — readings are persisted
            self.stats_recorder.incr("fusion_failures")
            now = self.clock()
            for entry in flushed:
                self.stats_recorder.enqueue_to_fused.record(
                    now - entry.enqueued_at)
            raise
        if from_cache:
            self.stats_recorder.incr("fusion_cache_hits")
        if result.incremental:
            self.stats_recorder.incr("incremental_fusions")
        fused_at = self.clock()
        for entry in flushed:
            self.stats_recorder.enqueue_to_fused.record(
                fused_at - entry.enqueued_at)

        def apply() -> int:
            return self.service.apply_fusion_result(
                result, channel=self.channel)

        # Only SensorError/OrbError are transient at the notify edge.
        # An unexpected exception from a consumer is not retried (it
        # would fail identically every time): it is recorded in the
        # dead-letter queue with reason "unexpected" and counted, while
        # the batch's readings — already fused and persisted — keep
        # their terminal state.
        try:
            notified = call_with_retry(apply, self.config.retry,
                                       on_retry=self._count_retry)
        except TRANSIENT_ERRORS:
            raise  # retries exhausted: the worker records the failure
        except Exception as exc:  # noqa: BLE001 — not retryable
            self.stats_recorder.incr("notify_failures")
            self.dead_letters.add(flushed[0].reading,
                                  f"unexpected: {exc!r}", self.clock())
            return
        dispatch = self.service.consume_dispatch_detail(result)
        if dispatch is not None:
            if dispatch["evaluated"]:
                self.stats_recorder.incr("subscriptions_evaluated",
                                         dispatch["evaluated"])
            if dispatch["pruned"]:
                self.stats_recorder.incr("subscriptions_pruned",
                                         dispatch["pruned"])
            if dispatch.get("semantic_evaluated"):
                self.stats_recorder.incr("semantic_evaluated",
                                         dispatch["semantic_evaluated"])
            if dispatch.get("semantic_pruned"):
                self.stats_recorder.incr("semantic_pruned",
                                         dispatch["semantic_pruned"])
        if notified:
            self.stats_recorder.incr("notifications", notified)
            self.stats_recorder.fused_to_notified.record(
                self.clock() - fused_at)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> PipelineStats:
        """A consistent snapshot of counters and latency histograms."""
        return self.stats_recorder.snapshot()

    @property
    def started(self) -> bool:
        return self._started
