"""Pipeline observability: counters and latency histograms.

Every reading accepted by the pipeline ends in exactly one of three
terminal states — fused, dropped, or dead-lettered — so after a drain
the totals reconcile exactly::

    enqueued == fused + dropped + dead_lettered

Latencies are recorded into fixed geometric-bucket histograms (O(1)
memory, deterministic percentiles) on two spans: enqueue→fused (queue
wait + batch window + flush + fusion) and fused→notified (subscription
evaluation + event delivery).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import PipelineError

# ~25 µs .. ~10.5 s in powers of two; latencies above the last bound
# land in an unbounded overflow bucket.
_DEFAULT_BOUNDS = tuple(2.0 ** -15 * 2.0 ** i for i in range(20))


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable summary of one latency histogram."""

    count: int
    total: float
    p50: float
    p95: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Percentiles report the upper bound of the bucket containing the
    requested rank, which over-estimates by at most one bucket width —
    plenty for tuning batch windows and worker counts.
    """

    def __init__(self, bounds: Tuple[float, ...] = _DEFAULT_BOUNDS) -> None:
        if not bounds or any(b <= 0.0 for b in bounds):
            raise PipelineError("histogram bounds must be positive")
        if list(bounds) != sorted(bounds):
            raise PipelineError("histogram bounds must be ascending")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        bucket = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                bucket = i
                break
        with self._lock:
            self._counts[bucket] += 1
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds

    def percentile(self, fraction: float) -> float:
        """The latency at a cumulative ``fraction`` of samples (0..1]."""
        if not 0.0 < fraction <= 1.0:
            raise PipelineError("percentile fraction must be in (0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = fraction * self._count
            seen = 0
            for i, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    if i < len(self.bounds):
                        # Clamp to the observed max: a bucket's upper
                        # bound can exceed every sample in it.
                        return min(self.bounds[i], self._max)
                    return self._max
            return self._max

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            count, total, max_ = self._count, self._total, self._max
        return HistogramSnapshot(
            count=count, total=total,
            p50=self.percentile(0.5) if count else 0.0,
            p95=self.percentile(0.95) if count else 0.0,
            max=max_,
        )


@dataclass(frozen=True)
class PipelineStats:
    """One consistent snapshot of the pipeline's counters.

    Attributes:
        enqueued: readings accepted by :meth:`LocationPipeline.submit`
            (including ones later dropped or dead-lettered; excludes
            ``reject``-policy refusals).
        fused: readings flushed to the spatial database and covered by
            a fusion pass.
        dropped: readings evicted by the ``drop-oldest`` policy.
        dead_lettered: malformed/uncalibratable readings plus flush
            failures that exhausted their retries.
        rejected: puts refused outright by the ``reject`` policy.
        batches: fusion batches processed.
        notifications: subscription events delivered from fused results.
        retries: transient-failure retries across flush and notify.
        fusion_failures: batches whose fusion pass raised (readings
            still counted fused — they are in the database).
        notify_failures: batches whose notify step raised a
            non-transient exception (surfaced to the dead-letter queue
            with reason ``"unexpected"`` instead of being retried; the
            readings stay fused).
        fusion_cache_hits: batches answered from the service's
            content-addressed fusion cache without running the engine.
        incremental_fusions: batches fused by evolving the object's
            previous lattice instead of rebuilding from scratch.
        subscriptions_evaluated: region subscriptions actually refined
            against a fused result during notify.
        subscriptions_pruned: matching subscriptions skipped because
            the indexed dispatch proved them no-ops (region disjoint
            from the fused support, not inside, not zero-threshold).
        semantic_evaluated: semantic rules re-derived against a fused
            result (the incremental engine's affected set).
        semantic_pruned: registered semantic rules skipped because no
            body atom of theirs could have changed.
        enqueue_to_fused: latency from intake to fusion completion.
        fused_to_notified: latency from fusion to notification delivery.
    """

    enqueued: int = 0
    fused: int = 0
    dropped: int = 0
    dead_lettered: int = 0
    rejected: int = 0
    batches: int = 0
    notifications: int = 0
    retries: int = 0
    fusion_failures: int = 0
    notify_failures: int = 0
    fusion_cache_hits: int = 0
    incremental_fusions: int = 0
    subscriptions_evaluated: int = 0
    subscriptions_pruned: int = 0
    semantic_evaluated: int = 0
    semantic_pruned: int = 0
    enqueue_to_fused: HistogramSnapshot = field(
        default_factory=lambda: HistogramSnapshot(0, 0.0, 0.0, 0.0, 0.0))
    fused_to_notified: HistogramSnapshot = field(
        default_factory=lambda: HistogramSnapshot(0, 0.0, 0.0, 0.0, 0.0))

    def reconciles(self) -> bool:
        """Whether every accepted reading reached a terminal state."""
        return self.enqueued == (self.fused + self.dropped
                                 + self.dead_lettered)

    def summary(self) -> str:
        """A compact human-readable report (CLI and benchmarks)."""
        lines = [
            f"enqueued={self.enqueued} fused={self.fused} "
            f"dropped={self.dropped} dead_lettered={self.dead_lettered} "
            f"rejected={self.rejected}",
            f"batches={self.batches} notifications={self.notifications} "
            f"retries={self.retries} fusion_failures={self.fusion_failures} "
            f"notify_failures={self.notify_failures}",
            f"fusion_cache_hits={self.fusion_cache_hits} "
            f"incremental_fusions={self.incremental_fusions}",
            f"subscriptions_evaluated={self.subscriptions_evaluated} "
            f"subscriptions_pruned={self.subscriptions_pruned}",
            f"semantic_evaluated={self.semantic_evaluated} "
            f"semantic_pruned={self.semantic_pruned}",
            f"enqueue->fused:    n={self.enqueue_to_fused.count} "
            f"p50={self.enqueue_to_fused.p50 * 1e3:.2f}ms "
            f"p95={self.enqueue_to_fused.p95 * 1e3:.2f}ms "
            f"max={self.enqueue_to_fused.max * 1e3:.2f}ms",
            f"fused->notified:   n={self.fused_to_notified.count} "
            f"p50={self.fused_to_notified.p50 * 1e3:.2f}ms "
            f"p95={self.fused_to_notified.p95 * 1e3:.2f}ms "
            f"max={self.fused_to_notified.max * 1e3:.2f}ms",
            f"reconciles={self.reconciles()}",
        ]
        return "\n".join(lines)


class PipelineStatsRecorder:
    """Thread-safe mutable counters behind :class:`PipelineStats`."""

    _COUNTERS = ("enqueued", "fused", "dropped", "dead_lettered",
                 "rejected", "batches", "notifications", "retries",
                 "fusion_failures", "notify_failures",
                 "fusion_cache_hits", "incremental_fusions",
                 "subscriptions_evaluated", "subscriptions_pruned",
                 "semantic_evaluated", "semantic_pruned")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {c: 0 for c in self._COUNTERS}
        self.enqueue_to_fused = LatencyHistogram()
        self.fused_to_notified = LatencyHistogram()

    def incr(self, counter: str, by: int = 1) -> None:
        if counter not in self._counters:
            raise PipelineError(f"unknown counter {counter!r}")
        with self._lock:
            self._counters[counter] += by

    def get(self, counter: str) -> int:
        with self._lock:
            return self._counters[counter]

    def snapshot(self) -> PipelineStats:
        with self._lock:
            counters = dict(self._counters)
        return PipelineStats(
            enqueue_to_fused=self.enqueue_to_fused.snapshot(),
            fused_to_notified=self.fused_to_notified.snapshot(),
            **counters,
        )
