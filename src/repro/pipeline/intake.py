"""Bounded reading intake with overflow policies and a dead-letter queue.

The seed reproduction writes every adapter reading straight into the
spatial database, which couples sensing rates to fusion cost.  The
intake tier decouples them: adapters ``put`` raw readings into bounded
per-object queues; worker threads drain them in batches.  When a queue
is full the configured overflow policy decides what happens:

* ``block``       — the producer waits for space (lossless back-pressure);
* ``drop-oldest`` — the oldest queued reading for that object is evicted
  (freshest-data-wins, with exact drop accounting);
* ``reject``      — the put raises :class:`~repro.errors.IntakeOverflowError`.

Malformed or uncalibratable readings never enter the queues at all —
the pipeline routes them to a :class:`DeadLetterQueue` with a
human-readable reason, so a misbehaving adapter is observable instead
of silently corrupting fusion.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import IntakeOverflowError, PipelineError
from repro.geometry import Point, Rect

Clock = Callable[[], float]

OVERFLOW_BLOCK = "block"
OVERFLOW_DROP_OLDEST = "drop-oldest"
OVERFLOW_REJECT = "reject"
OVERFLOW_POLICIES = (OVERFLOW_BLOCK, OVERFLOW_DROP_OLDEST, OVERFLOW_REJECT)


@dataclass(frozen=True)
class PipelineReading:
    """One raw adapter emission, not yet in the spatial database.

    Mirrors the arguments of
    :meth:`repro.spatialdb.SpatialDatabase.insert_reading` so a worker
    can flush it verbatim once its batch is drained.
    """

    sensor_id: str
    glob_prefix: str
    sensor_type: str
    object_id: str
    rect: Rect
    detection_time: float
    location: Optional[Point] = None
    detection_radius: float = 0.0


# Readings are the shard fleet's hottest wire type: register them with
# both ORB codecs so `submit_batch` ships PipelineReading objects
# directly (struct-packed on binary connections) instead of
# hand-rolled field dicts.  Safe from circular imports — the orb
# package never imports the pipeline at module level.
from repro.orb import serialization as _orb_serialization  # noqa: E402
from repro.orb import wire as _orb_wire  # noqa: E402

_orb_serialization.register_type(
    "PipelineReading", PipelineReading,
    lambda r: {
        "sensor_id": r.sensor_id,
        "glob_prefix": r.glob_prefix,
        "sensor_type": r.sensor_type,
        "object_id": r.object_id,
        "rect": r.rect,
        "detection_time": r.detection_time,
        "location": r.location,
        "detection_radius": r.detection_radius,
    },
    lambda d: PipelineReading(
        sensor_id=d["sensor_id"],
        glob_prefix=d["glob_prefix"],
        sensor_type=d["sensor_type"],
        object_id=d["object_id"],
        rect=d["rect"],
        detection_time=d["detection_time"],
        location=d.get("location"),
        detection_radius=d.get("detection_radius", 0.0),
    ),
)


def _pack_reading(reading: "PipelineReading", out: bytearray) -> None:
    _orb_wire._require(
        type(reading.sensor_id) is str
        and type(reading.glob_prefix) is str
        and type(reading.sensor_type) is str
        and type(reading.object_id) is str
        and type(reading.rect) is Rect
        and (reading.location is None or type(reading.location) is Point))
    _orb_wire._write_str(out, reading.sensor_id)
    _orb_wire._write_str(out, reading.glob_prefix)
    _orb_wire._write_str(out, reading.sensor_type)
    _orb_wire._write_str(out, reading.object_id)
    _orb_wire._pack_rect(reading.rect, out)
    out += _orb_wire._F64.pack(_orb_wire._num(reading.detection_time))
    if reading.location is None:
        out.append(0)
    else:
        out.append(1)
        _orb_wire._pack_point(reading.location, out)
    out += _orb_wire._F64.pack(_orb_wire._num(reading.detection_radius))


def _unpack_reading(reader: "_orb_wire._Reader") -> "PipelineReading":
    sensor_id = reader.str_()
    glob_prefix = reader.str_()
    sensor_type = reader.str_()
    object_id = reader.str_()
    rect = _orb_wire._unpack_rect(reader)
    detection_time = reader.f64()
    location = (_orb_wire._unpack_point(reader)
                if reader.u8() else None)
    detection_radius = reader.f64()
    return PipelineReading(
        sensor_id=sensor_id, glob_prefix=glob_prefix,
        sensor_type=sensor_type, object_id=object_id, rect=rect,
        detection_time=detection_time, location=location,
        detection_radius=detection_radius)


_orb_wire.register_packed(_orb_wire.CODE_READING, PipelineReading,
                          _pack_reading, _unpack_reading)


@dataclass(frozen=True)
class QueuedReading:
    """A reading plus the wall-clock instant it entered the intake."""

    reading: PipelineReading
    enqueued_at: float


@dataclass(frozen=True)
class DeadLetter:
    """One reading the pipeline refused, and why."""

    reading: PipelineReading
    reason: str
    time: float


class DeadLetterQueue:
    """Bounded capture of refused readings with reasons.

    The queue keeps the most recent ``capacity`` letters (oldest are
    evicted) but counts every letter ever added, so totals stay exact
    even after eviction.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise PipelineError("dead-letter capacity must be positive")
        self._letters: Deque[DeadLetter] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._total = 0

    def add(self, reading: PipelineReading, reason: str,
            time_: float) -> DeadLetter:
        letter = DeadLetter(reading, reason, time_)
        with self._lock:
            self._letters.append(letter)
            self._total += 1
        return letter

    def items(self) -> List[DeadLetter]:
        with self._lock:
            return list(self._letters)

    def reasons(self) -> Dict[str, int]:
        """Letter counts grouped by reason (retained letters only)."""
        out: Dict[str, int] = {}
        for letter in self.items():
            out[letter.reason] = out.get(letter.reason, 0) + 1
        return out

    @property
    def total(self) -> int:
        """Every letter ever added, including evicted ones."""
        with self._lock:
            return self._total

    def __len__(self) -> int:
        with self._lock:
            return len(self._letters)


@dataclass
class _ObjectQueue:
    entries: Deque[QueuedReading] = field(default_factory=deque)

    @property
    def oldest_at(self) -> float:
        return self.entries[0].enqueued_at


class IntakeQueue:
    """Bounded per-object reading queues with pluggable overflow policy.

    Args:
        capacity: maximum queued readings *per object*.
        policy: one of ``block`` / ``drop-oldest`` / ``reject``.
        clock: wall-clock source for enqueue timestamps (injectable so
            latency accounting is testable).
    """

    def __init__(self, capacity: int = 256,
                 policy: str = OVERFLOW_BLOCK,
                 clock: Optional[Clock] = None) -> None:
        if capacity <= 0:
            raise PipelineError("intake capacity must be positive")
        if policy not in OVERFLOW_POLICIES:
            raise PipelineError(
                f"unknown overflow policy {policy!r}; "
                f"expected one of {OVERFLOW_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self.clock = clock if clock is not None else time.monotonic
        self._queues: Dict[str, _ObjectQueue] = {}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._version = 0
        self.enqueued_total = 0
        self.dropped_total = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def put(self, reading: PipelineReading,
            timeout: Optional[float] = None) -> int:
        """Enqueue one reading; returns the number of evicted readings.

        ``block`` waits until there is room (or ``timeout`` elapses, in
        which case :class:`IntakeOverflowError` is raised so producers
        cannot silently lose data).  ``drop-oldest`` evicts and returns
        1.  ``reject`` raises immediately when full.
        """
        with self._lock:
            if self._closed:
                raise PipelineError("intake is closed")
            queue = self._queues.setdefault(reading.object_id,
                                            _ObjectQueue())
            dropped = 0
            if len(queue.entries) >= self.capacity:
                if self.policy == OVERFLOW_REJECT:
                    raise IntakeOverflowError(
                        f"intake full for {reading.object_id!r} "
                        f"(capacity {self.capacity})")
                if self.policy == OVERFLOW_DROP_OLDEST:
                    queue.entries.popleft()
                    dropped = 1
                    self.dropped_total += 1
                else:  # block
                    deadline = (None if timeout is None
                                else self.clock() + timeout)
                    while len(queue.entries) >= self.capacity:
                        if self._closed:
                            raise PipelineError("intake is closed")
                        if deadline is None:
                            self._not_full.wait()
                        else:
                            remaining = deadline - self.clock()
                            if remaining <= 0.0 or not self._not_full.wait(
                                    remaining):
                                raise IntakeOverflowError(
                                    f"timed out enqueueing for "
                                    f"{reading.object_id!r}")
            queue.entries.append(
                QueuedReading(reading, self.clock()))
            self.enqueued_total += 1
            self._version += 1
            self._not_empty.notify_all()
            return dropped

    def close(self) -> None:
        """Refuse further puts and wake every blocked producer."""
        with self._lock:
            self._closed = True
            self._version += 1
            self._not_full.notify_all()
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    # Consumer side (used by the batcher)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Tuple[int, float]]:
        """Per-object (pending count, oldest enqueue time) view."""
        with self._lock:
            return {object_id: (len(q.entries), q.oldest_at)
                    for object_id, q in self._queues.items()
                    if q.entries}

    def take(self, object_id: str, limit: int) -> List[QueuedReading]:
        """Pop up to ``limit`` queued readings for one object."""
        if limit <= 0:
            raise PipelineError("take limit must be positive")
        with self._lock:
            queue = self._queues.get(object_id)
            if queue is None or not queue.entries:
                return []
            out = []
            while queue.entries and len(out) < limit:
                out.append(queue.entries.popleft())
            self._not_full.notify_all()
            return out

    def total_pending(self) -> int:
        with self._lock:
            return sum(len(q.entries) for q in self._queues.values())

    def wait_for_item(self, timeout: float) -> bool:
        """Block until any reading is queued (or ``timeout`` elapses)."""
        with self._lock:
            if any(q.entries for q in self._queues.values()):
                return True
            if self._closed:
                return False
            return self._not_empty.wait(timeout)

    def version(self) -> int:
        """Monotonic change counter, bumped by every put, consumer
        notification, and close.  Consumers snapshot it before scanning
        for ready work and hand it back to :meth:`wait_for_change`, so
        a change landing between the scan and the wait is never lost."""
        with self._lock:
            return self._version

    def wait_for_change(self, version: int, timeout: float) -> bool:
        """Block until the change counter moves past ``version`` (or
        ``timeout`` elapses).  Unlike :meth:`wait_for_item` this does
        *not* return early just because readings are queued — queued
        readings still inside their batching window are not progress,
        and returning for them turns consumers into busy-pollers."""
        with self._lock:
            if self._version != version:
                return True
            self._not_empty.wait(timeout)
            return self._version != version

    def notify_consumers(self) -> None:
        """Wake batcher waiters (an in-flight object was released)."""
        with self._lock:
            self._version += 1
            self._not_empty.notify_all()
