"""Bounded retry with exponential backoff and jitter.

Worker flush and notify touch two fallible edges: the spatial database
(:class:`~repro.errors.SensorError` on bad metadata races) and the ORB
(:class:`~repro.errors.OrbError` on transient transport failures).
Both are retried with capped exponential backoff plus decorrelating
jitter; anything else propagates immediately — a programming error must
not be retried into the dead-letter queue.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import OrbError, PipelineError, SensorError

T = TypeVar("T")

# The transient error classes worker flush/notify retries (the issue's
# contract); everything else is assumed permanent.
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (SensorError, OrbError)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient failures.

    ``delay(attempt)`` for attempt 1, 2, 3... is
    ``min(max_delay, base_delay * multiplier ** (attempt - 1))``,
    scaled by a uniform jitter factor in ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PipelineError("max_attempts must be >= 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise PipelineError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise PipelineError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise PipelineError("jitter must be in [0, 1)")

    def delay_for(self, attempt: int,
                  rng: Optional[random.Random] = None) -> float:
        """The backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise PipelineError("attempt numbers are 1-based")
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0 or rng is None:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def call_with_retry(fn: Callable[[], T],
                    policy: Optional[RetryPolicy] = None,
                    retryable: Tuple[Type[BaseException], ...]
                    = TRANSIENT_ERRORS,
                    sleep: Callable[[float], None] = time.sleep,
                    rng: Optional[random.Random] = None,
                    on_retry: Optional[Callable[[int, BaseException], None]]
                    = None) -> T:
    """Call ``fn`` retrying transient failures; returns its result.

    ``sleep`` and ``rng`` are injectable so tests run instantly and
    deterministically.  ``on_retry(attempt, exc)`` fires before each
    backoff — the pipeline counts retries there.  The last exception is
    re-raised once ``policy.max_attempts`` calls have all failed.
    """
    if policy is None:
        policy = RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retryable as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = policy.delay_for(attempt, rng)
            if delay > 0.0:
                sleep(delay)
