"""Streaming ingestion: batched, back-pressured reading intake.

The asynchronous location-update path between location adapters
(paper Section 6) and the Location Service (Section 4).  See
``docs/PIPELINE.md`` for the architecture, overflow policies and
tuning knobs.
"""

from repro.pipeline.batcher import Batch, Batcher
from repro.pipeline.intake import (
    OVERFLOW_BLOCK,
    OVERFLOW_DROP_OLDEST,
    OVERFLOW_POLICIES,
    OVERFLOW_REJECT,
    DeadLetter,
    DeadLetterQueue,
    IntakeQueue,
    PipelineReading,
    QueuedReading,
)
from repro.pipeline.lifecycle import LocationPipeline, PipelineConfig
from repro.pipeline.retry import (
    TRANSIENT_ERRORS,
    RetryPolicy,
    call_with_retry,
)
from repro.pipeline.stats import (
    HistogramSnapshot,
    LatencyHistogram,
    PipelineStats,
    PipelineStatsRecorder,
)
from repro.pipeline.workers import WorkerPool

__all__ = [
    "Batch",
    "Batcher",
    "DeadLetter",
    "DeadLetterQueue",
    "HistogramSnapshot",
    "IntakeQueue",
    "LatencyHistogram",
    "LocationPipeline",
    "OVERFLOW_BLOCK",
    "OVERFLOW_DROP_OLDEST",
    "OVERFLOW_POLICIES",
    "OVERFLOW_REJECT",
    "PipelineConfig",
    "PipelineReading",
    "PipelineStats",
    "PipelineStatsRecorder",
    "QueuedReading",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "WorkerPool",
    "call_with_retry",
]
