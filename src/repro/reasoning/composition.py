"""RCC-8 composition: inferring relations the sensors never measured.

RCC [paper ref 2] is "a first order theory of spatial regions"; its
workhorse inference is the *composition table*: knowing R1(a, b) and
R2(b, c) constrains R(a, c) to a subset of the eight base relations.
The Location Service uses this to answer relation queries between
regions that were never compared directly (e.g. an application-defined
region vs a room on another floor, via the floor itself).

The table below is the standard RCC-8 composition table (Cohn et al.),
encoded per (R1, R2) pair; ``compose`` returns the set of possible
relations, and :class:`RelationNetwork` runs path-consistency over a
set of regions with partially known relations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import ReasoningError
from repro.reasoning.rcc8 import RCC8

ALL = frozenset(RCC8)

# Short aliases to keep the table readable.
DC, EC, PO = RCC8.DC, RCC8.EC, RCC8.PO
TPP, NTPP, TPPI, NTPPI, EQ = (RCC8.TPP, RCC8.NTPP, RCC8.TPPI,
                              RCC8.NTPPI, RCC8.EQ)


def _s(*relations: RCC8) -> FrozenSet[RCC8]:
    return frozenset(relations)


# The standard RCC-8 composition table: _TABLE[(R1, R2)] is the set of
# possible relations R(a, c) given R1(a, b) and R2(b, c).
_TABLE: Dict[Tuple[RCC8, RCC8], FrozenSet[RCC8]] = {
    (DC, DC): ALL,
    (DC, EC): _s(DC, EC, PO, TPP, NTPP),
    (DC, PO): _s(DC, EC, PO, TPP, NTPP),
    (DC, TPP): _s(DC, EC, PO, TPP, NTPP),
    (DC, NTPP): _s(DC, EC, PO, TPP, NTPP),
    (DC, TPPI): _s(DC,),
    (DC, NTPPI): _s(DC,),
    (EC, DC): _s(DC, EC, PO, TPPI, NTPPI),
    (EC, EC): _s(DC, EC, PO, TPP, TPPI, EQ),
    (EC, PO): _s(DC, EC, PO, TPP, NTPP),
    (EC, TPP): _s(EC, PO, TPP, NTPP),
    (EC, NTPP): _s(PO, TPP, NTPP),
    (EC, TPPI): _s(DC, EC),
    (EC, NTPPI): _s(DC,),
    (PO, DC): _s(DC, EC, PO, TPPI, NTPPI),
    (PO, EC): _s(DC, EC, PO, TPPI, NTPPI),
    (PO, PO): ALL,
    (PO, TPP): _s(PO, TPP, NTPP),
    (PO, NTPP): _s(PO, TPP, NTPP),
    (PO, TPPI): _s(DC, EC, PO, TPPI, NTPPI),
    (PO, NTPPI): _s(DC, EC, PO, TPPI, NTPPI),
    (TPP, DC): _s(DC,),
    (TPP, EC): _s(DC, EC),
    (TPP, PO): _s(DC, EC, PO, TPP, NTPP),
    (TPP, TPP): _s(TPP, NTPP),
    (TPP, NTPP): _s(NTPP,),
    (TPP, TPPI): _s(DC, EC, PO, TPP, TPPI, EQ),
    (TPP, NTPPI): _s(DC, EC, PO, TPPI, NTPPI),
    (NTPP, DC): _s(DC,),
    (NTPP, EC): _s(DC,),
    (NTPP, PO): _s(DC, EC, PO, TPP, NTPP),
    (NTPP, TPP): _s(NTPP,),
    (NTPP, NTPP): _s(NTPP,),
    (NTPP, TPPI): _s(DC, EC, PO, TPP, NTPP),
    (NTPP, NTPPI): ALL,
    (TPPI, DC): _s(DC, EC, PO, TPPI, NTPPI),
    (TPPI, EC): _s(EC, PO, TPPI, NTPPI),
    (TPPI, PO): _s(PO, TPPI, NTPPI),
    (TPPI, TPP): _s(PO, TPP, TPPI, EQ),
    (TPPI, NTPP): _s(PO, TPP, NTPP),
    (TPPI, TPPI): _s(TPPI, NTPPI),
    (TPPI, NTPPI): _s(NTPPI,),
    (NTPPI, DC): _s(DC, EC, PO, TPPI, NTPPI),
    (NTPPI, EC): _s(PO, TPPI, NTPPI),
    (NTPPI, PO): _s(PO, TPPI, NTPPI),
    (NTPPI, TPP): _s(PO, TPPI, NTPPI),
    (NTPPI, NTPP): _s(PO, TPP, NTPP, TPPI, NTPPI, EQ),
    (NTPPI, TPPI): _s(NTPPI,),
    (NTPPI, NTPPI): _s(NTPPI,),
}


def compose(first: RCC8, second: RCC8) -> FrozenSet[RCC8]:
    """Possible R(a, c) given ``first``(a, b) and ``second``(b, c).

    EQ composes as identity in either slot.
    """
    if first is EQ:
        return _s(second)
    if second is EQ:
        return _s(first)
    return _TABLE[(first, second)]


def invert(relations: Iterable[RCC8]) -> FrozenSet[RCC8]:
    """The converse of a disjunction of relations."""
    return frozenset(r.inverse for r in relations)


class RelationNetwork:
    """A qualitative constraint network over named regions.

    Known relations go in as (singleton or disjunctive) constraints;
    :meth:`propagate` runs the standard path-consistency algorithm,
    tightening every pair through every intermediate region.  An empty
    constraint set means the knowledge is inconsistent.
    """

    def __init__(self, regions: Iterable[str]) -> None:
        self.regions: List[str] = list(dict.fromkeys(regions))
        if len(self.regions) < 2:
            raise ReasoningError("a network needs at least two regions")
        self._constraints: Dict[Tuple[str, str], FrozenSet[RCC8]] = {}
        for a in self.regions:
            for b in self.regions:
                if a != b:
                    self._constraints[(a, b)] = ALL

    def _check(self, region: str) -> None:
        if region not in self.regions:
            raise ReasoningError(f"unknown region {region!r}")

    def set_relation(self, a: str, b: str,
                     relations: Iterable[RCC8]) -> None:
        """Constrain R(a, b) to the given disjunction."""
        self._check(a)
        self._check(b)
        allowed = frozenset(relations)
        if not allowed:
            raise ReasoningError("cannot set an empty constraint")
        self._constraints[(a, b)] = self._constraints[(a, b)] & allowed
        self._constraints[(b, a)] = (self._constraints[(b, a)]
                                     & invert(allowed))
        if not self._constraints[(a, b)]:
            raise ReasoningError(
                f"constraint on ({a}, {b}) became unsatisfiable")

    def relation(self, a: str, b: str) -> FrozenSet[RCC8]:
        """The current constraint on R(a, b)."""
        self._check(a)
        self._check(b)
        if a == b:
            return _s(EQ)
        return self._constraints[(a, b)]

    def propagate(self, max_rounds: int = 64) -> bool:
        """Path consistency; returns False when inconsistent."""
        for _ in range(max_rounds):
            changed = False
            for a in self.regions:
                for b in self.regions:
                    if a == b:
                        continue
                    current = self._constraints[(a, b)]
                    for c in self.regions:
                        if c in (a, b):
                            continue
                        through: Set[RCC8] = set()
                        for r1 in self._constraints[(a, c)]:
                            for r2 in self._constraints[(c, b)]:
                                through |= compose(r1, r2)
                        current = current & frozenset(through)
                        if not current:
                            self._constraints[(a, b)] = frozenset()
                            return False
                    if current != self._constraints[(a, b)]:
                        self._constraints[(a, b)] = current
                        self._constraints[(b, a)] = invert(current)
                        changed = True
            if not changed:
                return True
        return True

    def is_determined(self, a: str, b: str) -> bool:
        """Whether R(a, b) is narrowed to a single base relation."""
        return len(self.relation(a, b)) == 1
