"""Passage relations: ECFP, ECRP, ECNP (paper Section 4.6.1).

"If two regions are externally connected, it means that it *may* be
possible to go from one region to another. ... To make this
distinction, we define three additional relations:

    ECFP(a,b): EC(a,b) and there is a free passage from a to b.
    ECRP(a,b): EC(a,b) and there is a restricted passage from a to b.
    ECNP(a,b): EC(a,b) and there is no passage from a to b.

... the relations ECFP, ECRP and ECNP are evaluated by checking if
there is a door or an obstruction like a wall between the regions."
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Tuple, Union

from repro.model import Glob, PassageKind, WorldModel
from repro.reasoning.rcc8 import RCC8, rcc8_polygons, rcc8_rects


class PassageRelation(str, Enum):
    """Refinement of EC by traversability."""

    ECFP = "ECFP"  # free passage (open doorway)
    ECRP = "ECRP"  # restricted passage (locked door, card swipe)
    ECNP = "ECNP"  # no passage (wall only)


def passage_between(world: WorldModel, a: Union[Glob, str],
                    b: Union[Glob, str]) -> Optional[PassageRelation]:
    """The passage relation between two externally connected regions.

    Returns ``None`` when the regions are not externally connected at
    all (the passage refinements only apply to EC pairs).  With
    multiple doors the most permissive one wins — a free door makes
    the pair ECFP even if a locked door also exists.
    """
    relation = region_rcc8(world, a, b)
    if relation is not RCC8.EC:
        return None
    doors = world.doors_between(a, b)
    if not doors:
        return PassageRelation.ECNP
    kinds = {door.kind for door in doors}
    if PassageKind.FREE in kinds:
        return PassageRelation.ECFP
    if PassageKind.RESTRICTED in kinds:
        return PassageRelation.ECRP
    return PassageRelation.ECNP


def region_rcc8(world: WorldModel, a: Union[Glob, str],
                b: Union[Glob, str], exact: bool = True) -> RCC8:
    """The RCC-8 relation between two modelled regions.

    MBR-level first; refined with the regions' actual polygons when
    ``exact`` (rooms sharing only a corner of their MBRs are DC, not
    EC).
    """
    mbr_a = world.canonical_mbr(a)
    mbr_b = world.canonical_mbr(b)
    coarse = rcc8_rects(mbr_a, mbr_b)
    if not exact or coarse is RCC8.DC:
        return coarse
    return rcc8_polygons(world.canonical_polygon(a),
                         world.canonical_polygon(b))


def connected_pairs(world: WorldModel) -> List[Tuple[str, str, PassageRelation]]:
    """Every externally connected pair of enclosing regions with its
    passage relation.  The raw material for the navigation graph and
    the Prolog knowledge base."""
    regions = [e for e in world.entities() if e.entity_type.is_enclosing]
    out: List[Tuple[str, str, PassageRelation]] = []
    for i, first in enumerate(regions):
        for second in regions[i + 1:]:
            relation = passage_between(world, first.glob, second.glob)
            if relation is not None:
                out.append((str(first.glob), str(second.glob), relation))
    return out


def traversable(relation: PassageRelation,
                with_credentials: bool = False) -> bool:
    """Whether a passage can actually be crossed.

    Restricted passages require credentials (a key or card swipe);
    walls never open.
    """
    if relation is PassageRelation.ECFP:
        return True
    if relation is PassageRelation.ECRP:
        return with_credentials
    return False
