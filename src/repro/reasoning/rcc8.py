"""RCC-8 topological relations between regions (paper Section 4.6.1).

"We define several relations between regions based on the Region
Connection Calculus (RCC) [2].  RCC-8 defines various topological
relationships: Dis-Connection (DC), External Connection (EC), Partial
Overlap (PO), Tangential Proper Part (TPP), Non-Tangential Proper Part
(NTPP) and Equality (EQ).  Any two regions are related by exactly one
of these relations."

We compute the relations on MBRs (with the two inverse relations TPPi
and NTPPi included so the result is a true partition) and optionally
refine EC/PO decisions with exact polygons.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.geometry import Polygon, Rect

_EPS = 1e-9


class RCC8(str, Enum):
    """The eight jointly exhaustive, pairwise disjoint base relations."""

    DC = "DC"        # disconnected
    EC = "EC"        # externally connected (touching boundaries)
    PO = "PO"        # partial overlap
    TPP = "TPP"      # tangential proper part (a inside b, touching)
    NTPP = "NTPP"    # non-tangential proper part (a strictly inside b)
    TPPI = "TPPi"    # inverse tangential proper part
    NTPPI = "NTPPi"  # inverse non-tangential proper part
    EQ = "EQ"        # equal

    @property
    def inverse(self) -> "RCC8":
        """The relation with the arguments swapped."""
        return _INVERSE[self]

    @property
    def is_proper_part(self) -> bool:
        return self in (RCC8.TPP, RCC8.NTPP)

    @property
    def is_connected(self) -> bool:
        """Whether the regions share at least one point."""
        return self is not RCC8.DC


_INVERSE = {
    RCC8.DC: RCC8.DC,
    RCC8.EC: RCC8.EC,
    RCC8.PO: RCC8.PO,
    RCC8.TPP: RCC8.TPPI,
    RCC8.NTPP: RCC8.NTPPI,
    RCC8.TPPI: RCC8.TPP,
    RCC8.NTPPI: RCC8.NTPP,
    RCC8.EQ: RCC8.EQ,
}


def rcc8_rects(a: Rect, b: Rect, tolerance: float = _EPS) -> RCC8:
    """The unique RCC-8 relation between two rectangles.

    "Evaluating the relation between 2 regions is just O(1) given the
    vertices of the two regions" — constant-time interval arithmetic.
    """
    if a.almost_equals(b, tolerance):
        return RCC8.EQ
    if not a.intersects(b):
        return RCC8.DC
    if not a.overlaps(b):
        return RCC8.EC
    if b.contains_rect(a):
        return RCC8.NTPP if b.contains_rect_strictly(a) else RCC8.TPP
    if a.contains_rect(b):
        return RCC8.NTPPI if a.contains_rect_strictly(b) else RCC8.TPPI
    return RCC8.PO


def rcc8_polygons(a: Polygon, b: Polygon) -> RCC8:
    """The RCC-8 relation between two polygons (exact pass).

    Used when an MBR-level answer of EC/PO needs refinement: two
    L-shaped rooms may have overlapping MBRs while the actual regions
    are disconnected (Section 5.1's filter/refine pattern).
    """
    mbr_relation = rcc8_rects(a.mbr, b.mbr)
    if mbr_relation is RCC8.DC:
        return RCC8.DC

    a_vertices_equal = (
        len(a.vertices) == len(b.vertices)
        and all(any(v.almost_equals(w) for w in b.vertices)
                for v in a.vertices)
    )
    if a_vertices_equal and abs(a.area - b.area) <= _EPS:
        return RCC8.EQ

    if not a.intersects_polygon(b):
        return RCC8.DC
    shares_boundary = a.shares_edge_with(b)
    a_in_b = b.contains_polygon(a)
    b_in_a = a.contains_polygon(b)
    if a_in_b:
        return RCC8.TPP if shares_boundary else RCC8.NTPP
    if b_in_a:
        return RCC8.TPPI if shares_boundary else RCC8.NTPPI
    # Distinguish EC (boundary contact only) from PO (shared interior):
    # sample interior overlap via clipped area against each other's MBR.
    overlap = a.intersection_area_with_rect(b.mbr)
    if overlap <= _EPS or not _interiors_meet(a, b):
        return RCC8.EC
    return RCC8.PO


def _interiors_meet(a: Polygon, b: Polygon) -> bool:
    """Whether the two polygons share interior area (not just edges)."""
    clipped = a.clipped_to_rect(b.mbr)
    if clipped is None:
        return False
    # The centroid of the clipped piece lies inside both when the
    # interiors genuinely overlap (convex building shapes).
    centroid = clipped.centroid
    shrunk_inside = a.contains_point(centroid) and b.contains_point(centroid)
    if not shrunk_inside:
        return False
    # Guard against a degenerate sliver of zero area.
    return clipped.area > _EPS


def relate(a: Rect, b: Rect,
           polygon_a: Optional[Polygon] = None,
           polygon_b: Optional[Polygon] = None) -> RCC8:
    """MBR-first RCC-8 with optional exact refinement.

    Mirrors Section 5.1: "Once a certain condition is satisfied by a
    MBR, more accurate processing of the operation is performed taking
    the actual region boundaries."
    """
    coarse = rcc8_rects(a, b)
    if polygon_a is None or polygon_b is None:
        return coarse
    if coarse is RCC8.DC:
        return coarse  # disjoint MBRs are definitely disjoint regions
    return rcc8_polygons(polygon_a, polygon_b)
