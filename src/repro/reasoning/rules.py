"""Spatial rule base: exporting the world model into the logic engine.

The Location Service feeds region relations (RCC-8 plus the passage
refinements) into the logic engine as facts and "reasons further about
these relations" (Section 4.6.1) — reachability for route finding,
credential-gated accessibility, same-floor co-location, and so on.
"""

from __future__ import annotations

from typing import List, Union

from repro.model import EntityType, Glob, WorldModel
from repro.reasoning.passages import connected_pairs
from repro.reasoning.prolog import KnowledgeBase

# The derived-relation rule set loaded on top of the world facts.
SPATIAL_RULES = [
    # Passages are symmetric.
    "passage(X, Y) :- ecfp(X, Y)",
    "passage(X, Y) :- ecfp(Y, X)",
    "gated_passage(X, Y) :- ecrp(X, Y)",
    "gated_passage(X, Y) :- ecrp(Y, X)",
    # Reachability without credentials: free passages only.
    "reachable(X, Y) :- passage(X, Y)",
    "reachable(X, Y) :- passage(X, Z), reachable(Z, Y)",
    # Reachability with credentials: free or restricted passages.
    "opens(X, Y) :- passage(X, Y)",
    "opens(X, Y) :- gated_passage(X, Y)",
    "accessible(X, Y) :- opens(X, Y)",
    "accessible(X, Y) :- opens(X, Z), accessible(Z, Y)",
    # Hierarchy: transitive containment from direct parent facts.
    "within(X, Y) :- parent(X, Y)",
    "within(X, Y) :- parent(X, Z), within(Z, Y)",
    # Two regions are colocated at a granularity G if both lie within G.
    "colocated_in(X, Y, G) :- within(X, G), within(Y, G)",
    # A room is adjacent to another if any passage joins them.
    "adjacent(X, Y) :- opens(X, Y)",
]


def build_knowledge_base(world: WorldModel,
                         max_depth: int = 256) -> KnowledgeBase:
    """A knowledge base loaded with the world's spatial facts and rules.

    Facts exported:
      * ``ecfp/2``, ``ecrp/2``, ``ecnp/2`` — passage relations between
        externally connected regions (one direction; the rules add
        symmetry).
      * ``parent/2`` — direct GLOB hierarchy (room -> floor -> building).
      * ``region/1``, ``room/1``, ``corridor/1`` — region typing.
    """
    kb = KnowledgeBase(max_depth=max_depth)
    for rule in SPATIAL_RULES:
        kb.add(rule)
    for a, b, relation in connected_pairs(world):
        functor = relation.value.lower()
        kb.add_fact(functor, a, b)
    for entity in world.entities():
        glob = str(entity.glob)
        if entity.entity_type.is_enclosing:
            kb.add_fact("region", glob)
        if entity.entity_type is EntityType.ROOM:
            kb.add_fact("room", glob)
        elif entity.entity_type is EntityType.CORRIDOR:
            kb.add_fact("corridor", glob)
        prefix = entity.glob_prefix
        if prefix:
            kb.add_fact("parent", glob, prefix)
            # Chain the prefix hierarchy itself (SC/3 -> SC).
            parts = prefix.split("/")
            for i in range(len(parts) - 1, 0, -1):
                kb.add_fact("parent", "/".join(parts[: i + 1]),
                            "/".join(parts[:i]))
    return kb


def reachable_regions(kb: KnowledgeBase,
                      source: Union[Glob, str]) -> List[str]:
    """All regions reachable from ``source`` through free passages."""
    src = str(source).replace("'", "")
    return sorted({answer["Where"]
                   for answer in kb.query(f"reachable('{src}', Where)")})


def accessible_regions(kb: KnowledgeBase,
                       source: Union[Glob, str]) -> List[str]:
    """All regions reachable when restricted passages can be opened."""
    src = str(source).replace("'", "")
    return sorted({answer["Where"]
                   for answer in kb.query(f"accessible('{src}', Where)")})


def is_reachable(kb: KnowledgeBase, a: Union[Glob, str],
                 b: Union[Glob, str]) -> bool:
    """Whether ``b`` can be reached from ``a`` without credentials."""
    return kb.ask(f"reachable('{a}', '{b}')")
