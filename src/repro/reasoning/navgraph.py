"""Navigation graph and path distance (paper Section 4.6.1).

"Two kinds of distance measures are used: Euclidean, which is the
shortest straight line distance between the centers of the regions,
and path-distance, which is the length of a path from the center of
one region to the center of the other region."

The graph's nodes are enclosing regions (rooms and corridors); an edge
exists wherever a traversable door joins two regions, weighted by the
center -> door-sill -> center walking distance.  Dijkstra runs on a
from-scratch adjacency-list graph — no external graph library.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import ReasoningError
from repro.geometry import Point
from repro.model import Door, Glob, PassageKind, WorldModel


@dataclass(frozen=True)
class Edge:
    """A traversable connection between two regions through a door."""

    target: str
    weight: float
    door_glob: str
    restricted: bool


class Graph:
    """A weighted undirected graph with Dijkstra shortest paths.

    Single-source runs are memoized: ``distances`` keeps the full
    (dist, prev) maps per (source, allow_restricted), invalidated by a
    version counter bumped on every mutation and capped LRU-style.
    ``shortest_path`` answers from the memo with results bit-identical
    to the early-break Dijkstra kept as
    :meth:`shortest_path_reference` — relaxations are deterministic,
    and nodes on the target's shortest path are finalized before the
    target, so their ``prev`` entries never change afterwards.
    """

    _MEMO_CAPACITY = 256

    def __init__(self) -> None:
        self._adjacency: Dict[str, List[Edge]] = {}
        self._version = 0
        self._memo: "OrderedDict[Tuple[str, bool], Tuple[int, Dict[str, float], Dict[str, str]]]" = OrderedDict()
        self._memo_lock = threading.Lock()
        self.memo_hits = 0
        self.memo_misses = 0

    def add_node(self, node: str) -> None:
        if node not in self._adjacency:
            self._adjacency[node] = []
            self._version += 1

    def add_edge(self, a: str, b: str, weight: float,
                 door_glob: str = "", restricted: bool = False) -> None:
        if weight < 0.0:
            raise ReasoningError(f"negative edge weight {weight}")
        self.add_node(a)
        self.add_node(b)
        self._adjacency[a].append(Edge(b, weight, door_glob, restricted))
        self._adjacency[b].append(Edge(a, weight, door_glob, restricted))
        self._version += 1

    def nodes(self) -> List[str]:
        return sorted(self._adjacency)

    def neighbors(self, node: str) -> List[Edge]:
        try:
            return list(self._adjacency[node])
        except KeyError:
            raise ReasoningError(f"unknown graph node {node!r}") from None

    def has_node(self, node: str) -> bool:
        return node in self._adjacency

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._adjacency.values()) // 2

    def distances(self, source: str, allow_restricted: bool = False
                  ) -> Dict[str, float]:
        """Memoized single-source shortest distances from ``source``."""
        if source not in self._adjacency:
            raise ReasoningError(f"unknown source node {source!r}")
        return dict(self._single_source(source, allow_restricted)[0])

    def _single_source(self, source: str, allow_restricted: bool
                       ) -> Tuple[Dict[str, float], Dict[str, str]]:
        key = (source, allow_restricted)
        with self._memo_lock:
            cached = self._memo.get(key)
            if cached is not None and cached[0] == self._version:
                self.memo_hits += 1
                self._memo.move_to_end(key)
                return cached[1], cached[2]
            self.memo_misses += 1
            version = self._version
        dist: Dict[str, float] = {source: 0.0}
        prev: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        visited: Set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for edge in self._adjacency[node]:
                if edge.restricted and not allow_restricted:
                    continue
                candidate = d + edge.weight
                if candidate < dist.get(edge.target, float("inf")):
                    dist[edge.target] = candidate
                    prev[edge.target] = node
                    heapq.heappush(heap, (candidate, edge.target))
        with self._memo_lock:
            if version == self._version:
                self._memo[key] = (version, dist, prev)
                while len(self._memo) > self._MEMO_CAPACITY:
                    self._memo.popitem(last=False)
        return dist, prev

    def shortest_path(self, source: str, target: str,
                      allow_restricted: bool = False
                      ) -> Optional[Tuple[float, List[str]]]:
        """Dijkstra through the single-source memo.

        Bit-identical to :meth:`shortest_path_reference`: the full run
        performs the same relaxations as the early-break run up to the
        target's finalization, and later pops cannot rewrite the
        finalized path.
        """
        if source not in self._adjacency:
            raise ReasoningError(f"unknown source node {source!r}")
        if target not in self._adjacency:
            raise ReasoningError(f"unknown target node {target!r}")
        if source == target:
            return 0.0, [source]
        dist, prev = self._single_source(source, allow_restricted)
        if target not in dist:
            return None
        path = [target]
        while path[-1] != source:
            path.append(prev[path[-1]])
        path.reverse()
        return dist[target], path

    def shortest_path_reference(self, source: str, target: str,
                                allow_restricted: bool = False
                                ) -> Optional[Tuple[float, List[str]]]:
        """Early-break Dijkstra: (distance, node path) or ``None``."""
        if source not in self._adjacency:
            raise ReasoningError(f"unknown source node {source!r}")
        if target not in self._adjacency:
            raise ReasoningError(f"unknown target node {target!r}")
        if source == target:
            return 0.0, [source]
        dist: Dict[str, float] = {source: 0.0}
        prev: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        visited: Set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            for edge in self._adjacency[node]:
                if edge.restricted and not allow_restricted:
                    continue
                candidate = d + edge.weight
                if candidate < dist.get(edge.target, float("inf")):
                    dist[edge.target] = candidate
                    prev[edge.target] = node
                    heapq.heappush(heap, (candidate, edge.target))
        if target not in dist or target not in visited:
            return None
        path = [target]
        while path[-1] != source:
            path.append(prev[path[-1]])
        path.reverse()
        return dist[target], path

    def reachable_from(self, source: str,
                       allow_restricted: bool = False) -> Set[str]:
        """All nodes reachable from ``source``."""
        if source not in self._adjacency:
            raise ReasoningError(f"unknown source node {source!r}")
        seen = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            for edge in self._adjacency[node]:
                if edge.restricted and not allow_restricted:
                    continue
                if edge.target not in seen:
                    seen.add(edge.target)
                    stack.append(edge.target)
        return seen


@dataclass
class Route:
    """A computed route: total length, regions visited, doors crossed."""

    distance: float
    regions: List[str]
    doors: List[str] = field(default_factory=list)


class NavigationGraph:
    """The navigation graph of a world model.

    Edge weights approximate walking distance: region center to door
    sill midpoint, plus sill midpoint to the next region's center.
    """

    def __init__(self, world: WorldModel) -> None:
        self.world = world
        self.graph = Graph()
        self._door_by_pair: Dict[Tuple[str, str], Door] = {}
        self._build()

    def _build(self) -> None:
        for entity in self.world.entities():
            if entity.entity_type.is_enclosing:
                self.graph.add_node(str(entity.glob))
        for door in self.world.doors():
            if door.kind is PassageKind.NONE:
                continue
            a = str(door.region_a)
            b = str(door.region_b)
            sill_mid = self.world.frames.convert_point(
                door.sill.midpoint, door.frame, "")
            center_a = self.world.canonical_mbr(a).center
            center_b = self.world.canonical_mbr(b).center
            weight = (center_a.distance_to(sill_mid)
                      + sill_mid.distance_to(center_b))
            restricted = door.kind is PassageKind.RESTRICTED
            self.graph.add_edge(a, b, weight, str(door.glob), restricted)
            self._door_by_pair[(a, b)] = door
            self._door_by_pair[(b, a)] = door

    def refresh(self) -> None:
        """Rebuild from the world after regions or doors changed.

        The new graph starts with an empty distance memo, so any
        memoized single-source runs from before the change are gone.
        """
        self.graph = Graph()
        self._door_by_pair = {}
        self._build()

    # ------------------------------------------------------------------
    # Distances and routes
    # ------------------------------------------------------------------

    def path_distance(self, a: Union[Glob, str], b: Union[Glob, str],
                      allow_restricted: bool = False) -> Optional[float]:
        """Center-to-center walking distance, or ``None`` if unreachable."""
        result = self.graph.shortest_path(str(a), str(b), allow_restricted)
        return result[0] if result is not None else None

    def path_distance_reference(self, a: Union[Glob, str],
                                b: Union[Glob, str],
                                allow_restricted: bool = False
                                ) -> Optional[float]:
        """Unmemoized early-break Dijkstra, for equivalence tests."""
        result = self.graph.shortest_path_reference(
            str(a), str(b), allow_restricted)
        return result[0] if result is not None else None

    def route(self, a: Union[Glob, str], b: Union[Glob, str],
              allow_restricted: bool = False) -> Optional[Route]:
        """The full route with the doors to cross, for route-finding
        applications (Section 4.6.1)."""
        result = self.graph.shortest_path(str(a), str(b), allow_restricted)
        if result is None:
            return None
        distance, regions = result
        doors = []
        for first, second in zip(regions, regions[1:]):
            door = self._door_by_pair.get((first, second))
            if door is not None:
                doors.append(str(door.glob))
        return Route(distance, regions, doors)

    def euclidean_distance(self, a: Union[Glob, str],
                           b: Union[Glob, str]) -> float:
        """Straight-line distance between the region centers."""
        return self.world.canonical_mbr(a).center_distance(
            self.world.canonical_mbr(b))

    def path_distance_between_points(self, point_a: Point, point_b: Point,
                                     allow_restricted: bool = False
                                     ) -> Optional[float]:
        """Walking distance between two canonical points.

        Each point is attributed to its smallest enclosing region; the
        within-region legs are straight lines to the region centers.
        """
        region_a = self.world.smallest_region_containing(point_a)
        region_b = self.world.smallest_region_containing(point_b)
        if region_a is None or region_b is None:
            return None
        if region_a.glob == region_b.glob:
            return point_a.distance_to(point_b)
        between = self.path_distance(region_a.glob, region_b.glob,
                                     allow_restricted)
        if between is None:
            return None
        center_a = self.world.canonical_mbr(region_a.glob).center
        center_b = self.world.canonical_mbr(region_b.glob).center
        return (point_a.distance_to(center_a) + between
                + center_b.distance_to(point_b))
