"""Spatial reasoning: RCC-8, passages, navigation, logic rules.

Implements Section 4.6 of the paper: topological relations between
regions (RCC-8 with the ECFP/ECRP/ECNP passage refinements), Euclidean
and path distances over a navigation graph, derived relations through
a small Prolog-style engine, and probabilistic object/region
relations.
"""

from repro.reasoning.composition import (
    RelationNetwork,
    compose,
    invert,
)
from repro.reasoning.incremental import (
    MODE_INCREMENTAL,
    MODE_REFERENCE,
    SEMANTIC_RULES,
    LocationUpdate,
    SemanticRule,
    SemanticTriggerEngine,
    containment_chain,
)
from repro.reasoning.navgraph import Edge, Graph, NavigationGraph, Route
from repro.reasoning.passages import (
    PassageRelation,
    connected_pairs,
    passage_between,
    region_rcc8,
    traversable,
)
from repro.reasoning.prolog import (
    Atom,
    KnowledgeBase,
    Rule,
    Struct,
    Term,
    Var,
    parse_clause,
    parse_query,
    resolve,
    unify,
    walk,
)
from repro.reasoning.rcc8 import RCC8, rcc8_polygons, rcc8_rects, relate
from repro.reasoning.relations import ProbabilisticRelation, SpatialRelations
from repro.reasoning.rules import (
    SPATIAL_RULES,
    accessible_regions,
    build_knowledge_base,
    is_reachable,
    reachable_regions,
)

__all__ = [
    "Atom",
    "Edge",
    "Graph",
    "KnowledgeBase",
    "LocationUpdate",
    "MODE_INCREMENTAL",
    "MODE_REFERENCE",
    "NavigationGraph",
    "SEMANTIC_RULES",
    "SemanticRule",
    "SemanticTriggerEngine",
    "containment_chain",
    "PassageRelation",
    "ProbabilisticRelation",
    "RCC8",
    "RelationNetwork",
    "Route",
    "Rule",
    "SPATIAL_RULES",
    "SpatialRelations",
    "Struct",
    "Term",
    "Var",
    "accessible_regions",
    "build_knowledge_base",
    "compose",
    "connected_pairs",
    "invert",
    "is_reachable",
    "parse_clause",
    "parse_query",
    "passage_between",
    "rcc8_polygons",
    "rcc8_rects",
    "reachable_regions",
    "region_rcc8",
    "relate",
    "resolve",
    "traversable",
    "unify",
    "walk",
]
