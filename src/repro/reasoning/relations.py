"""Probabilistic spatial relationship functions (paper Section 4.6).

"The Location Service calculates different kinds of commonly used
spatial relationships between objects and regions. ... We also
associate probabilities with spatial relations, which are derived from
the probabilities of locations of the objects in the relation."

Three families, mirroring Sections 4.6.1-4.6.3:

* region x region — RCC-8 / passage relations and distances (crisp:
  the world model is not uncertain);
* object x region — containment, usage regions, distance;
* object x object — proximity, co-location, distance.

Object relations are graded: the located object's rectangle either
satisfies the geometric predicate or not, and the relation's
probability is the product of the participating estimates'
confidences, scaled by the satisfied overlap fraction where partial
containment is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core import LocationEstimate
from repro.errors import ReasoningError
from repro.geometry import Rect
from repro.model import Glob, WorldModel
from repro.reasoning.navgraph import NavigationGraph


@dataclass(frozen=True)
class ProbabilisticRelation:
    """A relation verdict with its probability.

    ``holds`` is the crisp reading (probability above 0.5);
    ``probability`` is what applications threshold against.
    """

    name: str
    probability: float
    holds: bool

    @classmethod
    def of(cls, name: str, probability: float) -> "ProbabilisticRelation":
        probability = min(1.0, max(0.0, probability))
        return cls(name, probability, probability > 0.5)


class SpatialRelations:
    """Relationship functions over a world model.

    Args:
        world: the deployment's world model.
        navigation: a prebuilt navigation graph (built lazily when
            omitted) for path distances.
    """

    def __init__(self, world: WorldModel,
                 navigation: Optional[NavigationGraph] = None) -> None:
        self.world = world
        self._navigation = navigation

    @property
    def navigation(self) -> NavigationGraph:
        if self._navigation is None:
            self._navigation = NavigationGraph(self.world)
        return self._navigation

    # ------------------------------------------------------------------
    # Object x region (Section 4.6.2)
    # ------------------------------------------------------------------

    def containment(self, estimate: LocationEstimate,
                    region: Union[Glob, str, Rect]) -> ProbabilisticRelation:
        """P(object inside region): estimate confidence x overlap
        fraction of the estimated rectangle inside the region."""
        region_rect = self._as_rect(region)
        if estimate.rect.area <= 0.0:
            fraction = 1.0 if region_rect.contains_rect(estimate.rect) else 0.0
        else:
            fraction = (estimate.rect.intersection_area(region_rect)
                        / estimate.rect.area)
        return ProbabilisticRelation.of(
            "containment", estimate.probability * fraction)

    def usage(self, estimate: LocationEstimate,
              object_glob: Union[Glob, str]) -> ProbabilisticRelation:
        """Whether the person is inside an object's *usage region*.

        "Usage Regions are defined for certain objects (like displays
        or tables) such that if a person has to use these objects for
        some purpose, he has to be within the usage region."  The
        usage region is the ``usage_region`` property of the entity (a
        Rect in the canonical frame) or, by default, the object's MBR
        expanded by ``usage_margin`` feet (default 5).
        """
        entity = self.world.get(object_glob)
        usage_rect = entity.properties.get("usage_region")
        if usage_rect is None:
            margin = float(entity.properties.get("usage_margin", 5.0))
            usage_rect = self.world.canonical_mbr(object_glob).expanded(margin)
        if not isinstance(usage_rect, Rect):
            raise ReasoningError(
                f"usage_region of {object_glob} is not a Rect")
        relation = self.containment(estimate, usage_rect)
        return ProbabilisticRelation.of("usage", relation.probability)

    def distance_to_region(self, estimate: LocationEstimate,
                           region: Union[Glob, str, Rect],
                           path: bool = False) -> Optional[float]:
        """Euclidean (default) or path distance from object to region."""
        region_rect = self._as_rect(region)
        if not path:
            return estimate.rect.center_distance(region_rect)
        return self.navigation.path_distance_between_points(
            estimate.rect.center, region_rect.center)

    # ------------------------------------------------------------------
    # Object x object (Section 4.6.3)
    # ------------------------------------------------------------------

    def proximity(self, first: LocationEstimate, second: LocationEstimate,
                  threshold: float) -> ProbabilisticRelation:
        """Whether two objects are closer than ``threshold`` feet.

        The geometric test uses the center distance of the estimated
        rectangles; the probability is the product of both estimates'
        confidences when the test passes (both must actually be where
        we think they are for the relation to really hold).
        """
        if threshold <= 0.0:
            raise ReasoningError(f"proximity threshold must be > 0")
        distance = first.rect.center_distance(second.rect)
        if distance >= threshold:
            return ProbabilisticRelation.of("proximity", 0.0)
        return ProbabilisticRelation.of(
            "proximity", first.probability * second.probability)

    def colocation(self, first: LocationEstimate, second: LocationEstimate,
                   granularity_depth: int = 3) -> ProbabilisticRelation:
        """Whether two objects are in the same symbolic region.

        ``granularity_depth`` counts GLOB segments: 1 = same building,
        2 = same floor, 3 = same room (for ``building/floor/room``
        deployments).
        """
        region_a = self.world.smallest_region_containing(first.rect.center)
        region_b = self.world.smallest_region_containing(second.rect.center)
        if region_a is None or region_b is None:
            return ProbabilisticRelation.of("colocation", 0.0)
        glob_a = region_a.glob.truncated_to_depth(granularity_depth)
        glob_b = region_b.glob.truncated_to_depth(granularity_depth)
        if glob_a != glob_b:
            return ProbabilisticRelation.of("colocation", 0.0)
        return ProbabilisticRelation.of(
            "colocation", first.probability * second.probability)

    def distance_between(self, first: LocationEstimate,
                         second: LocationEstimate,
                         path: bool = False) -> Optional[float]:
        """Euclidean or path distance between two located objects."""
        if not path:
            return first.rect.center_distance(second.rect)
        return self.navigation.path_distance_between_points(
            first.rect.center, second.rect.center)

    # ------------------------------------------------------------------
    # Region x region (Section 4.6.1) — crisp; delegates
    # ------------------------------------------------------------------

    def region_distance(self, a: Union[Glob, str], b: Union[Glob, str],
                        path: bool = False) -> Optional[float]:
        """Euclidean center distance or path distance between regions."""
        if not path:
            return self.navigation.euclidean_distance(a, b)
        return self.navigation.path_distance(a, b)

    # ------------------------------------------------------------------

    def _as_rect(self, region: Union[Glob, str, Rect]) -> Rect:
        if isinstance(region, Rect):
            return region
        return self.world.canonical_mbr(region)
