"""Incremental semantic rule evaluation over fused locations.

PR 5 indexed *geometric* dispatch; this module compiles *semantic*
subscriptions — rules whose body atoms reference engine-derivable
facts (``within``, ``colocated_in``, ``reachable``, ``near``, dwell
predicates with time windows) plus per-object fused-location facts —
into an incrementally maintained trigger engine (ROADMAP item 3,
grounded in Rule-Based Semantic Sensing).

The engine keeps a *delta fact set*: on each fused result it retracts
and asserts only the dynamic facts that actually changed (``at/2``,
``near/3``, ``dwell/3``) and re-derives only the subscriptions whose
body atoms could have been touched, found through

* a predicate -> subscription inverted index over the dependency
  closure of each rule body,
* an R-tree over the concrete region atoms of each subscription (the
  PR-5 pruning pattern), probed with the regions whose containment
  actually flipped (the symmetric difference of the old and new
  containment chains),
* an exact pair-flip index for ``near`` thresholds, and
* a deadline heap for dwell windows evaluated against the sim clock.

Naive full re-evaluation is kept as the bit-exact oracle: an engine
constructed with ``mode=MODE_REFERENCE`` re-asserts every fact into a
fresh :class:`KnowledgeBase` and re-runs every rule on every update,
exactly as PRs 3/5/7 pinned their fast paths.  Both modes must emit
observably identical event streams (same events, same order, same
payloads); ``tests/test_semantic_equivalence.py`` enforces it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ReasoningError
from repro.geometry import Rect
from repro.model import WorldModel
from repro.reasoning.prolog import (
    Atom,
    KnowledgeBase,
    Rule,
    Struct,
    Var,
    parse_clause,
)
from repro.reasoning.rules import SPATIAL_RULES, build_knowledge_base
from repro.spatialdb.rtree import RTree

MODE_INCREMENTAL = "incremental"
MODE_REFERENCE = "reference"

TRANSITION_ENTER = "enter"
TRANSITION_LEAVE = "leave"

# Rules bridging fused-location facts into the spatial vocabulary.
# ``at/2`` is the dynamic finest-region fact maintained per object;
# ``chain/2`` is the world's containment closure, materialized once by
# :meth:`SemanticTriggerEngine._base_kb` (it agrees with ``within/2``
# over the parent hierarchy, but enumerating it is an indexed fact
# lookup instead of an SLD recursion per object — the goal order
# ``chain then at`` turns a bound-region query into two index probes).
SEMANTIC_RULES = [
    "located_within(O, G) :- at(O, G)",
    "located_within(O, G) :- chain(R, G), at(O, R)",
    "colocated_at(X, Y, G) :- located_within(X, G), "
    "located_within(Y, G), distinct(X, Y)",
]

# Dynamic base predicates: the only facts that change between epochs
# (plus application-declared facts, tracked per functor).
_DYNAMIC_PREDICATES = ("at", "near", "dwell")

# For at-dependent predicates: which argument position names the
# region whose containment change can flip the atom's truth.
_REGION_ARG = {
    "at": 1,
    "located_within": 1,
    "colocated_at": 2,
    "dwell": 1,
}


@dataclass(frozen=True)
class LocationUpdate:
    """One fused location result, as seen by the semantic engine.

    ``region`` is the finest enclosing symbolic region (``None`` when
    the center falls outside every region), ``center`` the point
    estimate in canonical feet, ``time`` the sim-clock timestamp that
    dwell windows are measured against.
    """

    object_id: str
    region: Optional[str]
    center: Tuple[float, float]
    support: Optional[Rect] = None
    confidence: float = 1.0
    time: float = 0.0


def containment_chain(region: Optional[str]) -> Tuple[str, ...]:
    """The region plus its GLOB-prefix ancestors, finest first.

    Mirrors the ``parent``/``within`` facts that
    :func:`build_knowledge_base` exports (textual prefix hierarchy),
    so dwell bookkeeping and ``located_within`` agree on what regions
    an object is in.
    """
    if not region:
        return ()
    parts = region.split("/")
    return tuple("/".join(parts[:i]) for i in range(len(parts), 0, -1))


def _rule_dependency_map(rule_texts: List[str]) -> Dict[str, Set[str]]:
    mapping: Dict[str, Set[str]] = {}
    for text in rule_texts:
        rule = parse_clause(text)
        bucket = mapping.setdefault(rule.head.functor, set())
        for atom in rule.body:
            bucket.add(atom.functor)
    return mapping


_DEPENDENCIES = _rule_dependency_map(SPATIAL_RULES + SEMANTIC_RULES)


def _predicate_closure(predicates: Set[str]) -> Set[str]:
    """All predicates reachable from ``predicates`` through the
    shipped rule set (SPATIAL_RULES + SEMANTIC_RULES)."""
    closure: Set[str] = set()
    stack = list(predicates)
    while stack:
        predicate = stack.pop()
        if predicate in closure:
            continue
        closure.add(predicate)
        stack.extend(_DEPENDENCIES.get(predicate, ()))
    return closure


def _as_float_literal(term: Any, what: str) -> float:
    if not isinstance(term, Atom):
        raise ReasoningError(
            f"{what} must be a numeric literal, got {term!r}")
    try:
        value = float(term.value)
    except ValueError:
        raise ReasoningError(
            f"{what} must be a numeric literal, got {term.value!r}")
    if value <= 0.0:
        raise ReasoningError(f"{what} must be positive, got {value}")
    return value


@dataclass
class SemanticRule:
    """One compiled semantic subscription rule.

    The textual rule ``head(Vars...) :- body`` is parsed once; the
    head functor is rewritten to a unique internal name so two
    subscriptions may reuse the same head name without their solution
    sets merging.  Dependency analysis happens here: which dynamic
    predicates the body can reach, the concrete region rectangles for
    R-tree pruning, and the ``near``/``dwell`` literals that seed the
    pair-flip index and the dwell deadline heap.
    """

    subscription_id: str
    text: str
    head_functor: str = ""
    head_vars: Tuple[str, ...] = ()
    internal: str = ""
    compiled: Optional[Rule] = None
    depends: FrozenSet[str] = frozenset()
    fact_functors: FrozenSet[str] = frozenset()
    near_atoms: Tuple[Tuple[float, Tuple[Optional[str], Optional[str]]],
                      ...] = ()
    dwell_atoms: Tuple[Tuple[float, Optional[str], Optional[str]], ...] = ()
    region_atoms: Tuple[str, ...] = ()
    at_prunable: bool = False
    seq: int = 0
    previous: Set[Tuple[str, ...]] = field(default_factory=set)

    @classmethod
    def compile(cls, subscription_id: str, text: str,
                seq: int) -> "SemanticRule":
        parsed = parse_clause(text)
        if not parsed.body:
            raise ReasoningError(
                f"semantic subscription {subscription_id} must be a rule "
                f"(head :- body), got a bare fact")
        head = parsed.head
        names: List[str] = []
        for arg in head.args:
            if not isinstance(arg, Var):
                raise ReasoningError(
                    f"semantic rule head arguments must be variables, "
                    f"got {arg!r}")
            if arg.name in names:
                raise ReasoningError(
                    f"semantic rule head repeats variable {arg.name}")
            names.append(arg.name)

        body_functors = {atom.functor for atom in parsed.body}
        closure = _predicate_closure(set(body_functors))
        engine_vocab = (set(_DEPENDENCIES) | set(_DYNAMIC_PREDICATES)
                        | {"distinct", "parent", "chain", "region",
                           "room", "corridor", "ecfp", "ecrp", "ecnp"})
        fact_functors = frozenset(
            functor for functor in body_functors
            if functor not in engine_vocab)

        near_atoms: List[Tuple[float,
                               Tuple[Optional[str], Optional[str]]]] = []
        dwell_atoms: List[Tuple[float, Optional[str], Optional[str]]] = []
        region_atoms: List[str] = []
        at_prunable = "at" in closure
        for atom in parsed.body:
            if atom.functor == "near":
                if len(atom.args) != 3:
                    raise ReasoningError("near/3 expects (A, B, Feet)")
                threshold = _as_float_literal(atom.args[2], "near threshold")
                ground = tuple(
                    arg.value if isinstance(arg, Atom) else None
                    for arg in atom.args[:2])
                near_atoms.append((threshold, ground))  # type: ignore
            elif atom.functor == "dwell":
                if len(atom.args) != 3:
                    raise ReasoningError(
                        "dwell/3 expects (Object, Region, Seconds)")
                duration = _as_float_literal(atom.args[2], "dwell window")
                obj = atom.args[0].value \
                    if isinstance(atom.args[0], Atom) else None
                region = atom.args[1].value \
                    if isinstance(atom.args[1], Atom) else None
                dwell_atoms.append((duration, obj, region))
                if region is None:
                    at_prunable = False
                else:
                    region_atoms.append(region)
            position = _REGION_ARG.get(atom.functor)
            if position is not None and atom.functor != "dwell":
                if "at" not in _predicate_closure({atom.functor}):
                    continue
                region_term = atom.args[position] \
                    if position < len(atom.args) else None
                if isinstance(region_term, Atom):
                    region_atoms.append(region_term.value)
                else:
                    at_prunable = False

        rule = cls(
            subscription_id=subscription_id,
            text=text,
            head_functor=head.functor,
            head_vars=tuple(names),
            internal=f"__sub_{seq}",
            depends=frozenset(closure),
            fact_functors=fact_functors,
            near_atoms=tuple(near_atoms),
            dwell_atoms=tuple(dwell_atoms),
            region_atoms=tuple(region_atoms),
            at_prunable=at_prunable,
            seq=seq,
        )
        rule.compiled = Rule(
            Struct(rule.internal, head.args), parsed.body)
        return rule

    @property
    def arity(self) -> int:
        return len(self.head_vars)

    def depends_on(self, predicate: str) -> bool:
        return predicate in self.depends

    def near_matches(self, threshold: float, a: str, b: str) -> bool:
        """Whether a flip of pair ``{a, b}`` at ``threshold`` can touch
        this rule's near atoms."""
        for literal, ground in self.near_atoms:
            if literal != threshold:
                continue
            first, second = ground
            if first is not None and first not in (a, b):
                continue
            if second is not None and second not in (a, b):
                continue
            return True
        return False

    def dwell_matches(self, literal: float, obj: str, region: str) -> bool:
        for duration, ground_obj, ground_region in self.dwell_atoms:
            if duration != literal:
                continue
            if ground_obj is not None and ground_obj != obj:
                continue
            if ground_region is not None and ground_region != region:
                continue
            return True
        return False


class SemanticTriggerEngine:
    """Edge-triggered semantic subscriptions over fused locations.

    One instance runs in exactly one mode:

    * ``MODE_INCREMENTAL`` — a long-lived knowledge base mutated by
      delta facts, re-deriving only affected subscriptions;
    * ``MODE_REFERENCE`` — the naive oracle: a fresh knowledge base
      per epoch, every fact re-asserted, every rule re-run.

    Both modes share the identical bookkeeping of positions, dwell
    entry times and solution sets, so their event streams must be
    observably identical.
    """

    def __init__(self, world: WorldModel, mode: str = MODE_INCREMENTAL,
                 max_depth: int = 256) -> None:
        if mode not in (MODE_INCREMENTAL, MODE_REFERENCE):
            raise ReasoningError(f"unknown semantic engine mode {mode!r}")
        self.world = world
        self.mode = mode
        self.max_depth = max_depth
        self._seq = itertools.count(1)
        self._rules: Dict[str, SemanticRule] = {}
        # Shared dynamic state (identical in both modes).
        self._positions: Dict[str, Tuple[float, float]] = {}
        self._regions: Dict[str, Optional[str]] = {}
        # (object, region) -> entry time (sim clock).
        self._entries: Dict[Tuple[str, str], float] = {}
        # Declared application facts: functor -> set of arg tuples.
        self._facts: Dict[str, Set[Tuple[str, ...]]] = {}
        self._time = 0.0
        # Near thresholds in use -> pair set {frozenset({a,b})}.
        self._near_pairs: Dict[float, Set[FrozenSet[str]]] = {}
        # Dwell literals in use (durations, seconds).
        self._dwell_literals: Set[float] = set()
        # Incremental-only state.
        self._kb: Optional[KnowledgeBase] = None
        self._rtree = RTree()
        self._rtree_entries: Dict[str, List[Rect]] = {}
        self._always_at: Set[str] = set()
        # Exact inverted index: concrete region atom -> subscriptions
        # naming it.  The R-tree narrows geometrically; this index is
        # what guarantees completeness (it needs no geometry, so
        # regions the world has no rectangle for still dispatch).
        self._region_subscribers: Dict[str, Set[str]] = {}
        self._dwell_heap: List[Tuple[float, int, str, str, float]] = []
        self._heap_seq = itertools.count(1)
        self._asserted_dwell: Set[Tuple[str, str, float]] = set()
        # Stats.
        self.epochs = 0
        self.evaluated = 0
        self.pruned = 0
        self.kb_rebuilds = 0
        self.events_emitted = 0
        if mode == MODE_INCREMENTAL:
            self._kb = self._base_kb()

    # ------------------------------------------------------------------
    # Knowledge-base plumbing
    # ------------------------------------------------------------------

    def _base_kb(self) -> KnowledgeBase:
        kb = build_knowledge_base(self.world, max_depth=self.max_depth)
        for region, ancestor in self._containment_closure():
            kb.add_fact("chain", region, ancestor)
        for text in SEMANTIC_RULES:
            kb.add(text)
        self.kb_rebuilds += 1
        return kb

    def _containment_closure(self) -> List[Tuple[str, str]]:
        """Every (region, proper ancestor) pair in the world hierarchy.

        The static closure behind the ``chain/2`` facts: for each
        enclosing region glob (and each intermediate prefix such as
        ``SC/3``), all of its textual-prefix ancestors — the same
        hierarchy :func:`containment_chain` and the ``parent`` facts
        describe, flattened so ``located_within`` never recurses.
        """
        pairs: Set[Tuple[str, str]] = set()
        globs: Set[str] = set()
        for entity in self.world.entities():
            if entity.entity_type.is_enclosing:
                globs.add(str(entity.glob))
        for glob in list(globs):
            globs.update(containment_chain(glob))
        for glob in globs:
            chain = containment_chain(glob)
            for ancestor in chain[1:]:
                pairs.add((glob, ancestor))
        return sorted(pairs)

    def _mbr(self, region: str) -> Optional[Rect]:
        try:
            return self.world.canonical_mbr(region)
        except Exception:
            return None

    def _near_literal_key(self, value: float) -> str:
        # Canonical textual form shared by fact assertion and rule
        # literals: repr of the parsed float ("10.0", "2.5").
        return repr(value)

    def _assert_near(self, kb: KnowledgeBase, a: str, b: str,
                     threshold: float) -> None:
        literal = self._near_literal_key(threshold)
        kb.add_fact("near", a, b, literal)
        kb.add_fact("near", b, a, literal)

    def _retract_near(self, kb: KnowledgeBase, a: str, b: str,
                      threshold: float) -> None:
        literal = self._near_literal_key(threshold)
        kb.remove_fact("near", a, b, literal)
        kb.remove_fact("near", b, a, literal)

    def _rewrite_near_dwell_literals(self, rule: SemanticRule) -> Rule:
        """Canonicalize numeric literals in near/dwell body atoms so
        the rule text "near(A, B, 10)" matches the asserted fact
        ``near(a, b, '10.0')``."""
        assert rule.compiled is not None

        def rewrite(atom: Struct) -> Struct:
            if atom.functor in ("near", "dwell") and len(atom.args) == 3:
                literal = _as_float_literal(
                    atom.args[2], f"{atom.functor} literal")
                args = atom.args[:2] + (
                    Atom(self._near_literal_key(literal)),)
                return Struct(atom.functor, args)
            return atom

        return Rule(rule.compiled.head,
                    tuple(rewrite(a) for a in rule.compiled.body))

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------

    def subscribe(self, subscription_id: str, rule_text: str,
                  now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Register a rule; returns the initial activation events."""
        if subscription_id in self._rules:
            raise ReasoningError(
                f"duplicate semantic subscription {subscription_id}")
        now = self._time if now is None else max(now, self._time)
        self._time = now
        rule = SemanticRule.compile(subscription_id, rule_text,
                                    next(self._seq))
        self._rules[subscription_id] = rule

        for threshold, _ in rule.near_atoms:
            self._ensure_near_threshold(threshold)
        for duration, _, _ in rule.dwell_atoms:
            self._ensure_dwell_literal(duration, now)

        if self.mode == MODE_INCREMENTAL:
            assert self._kb is not None
            self._kb.add(self._rewrite_near_dwell_literals(rule))
            rects = []
            for region in rule.region_atoms:
                rect = self._mbr(region)
                if rect is None:
                    # Unknown region: its containment never changes, so
                    # the atom contributes no pruning rectangle.
                    continue
                rects.append(rect)
                self._rtree.insert(rect, subscription_id)
            self._rtree_entries[subscription_id] = rects
            for region in rule.region_atoms:
                self._region_subscribers.setdefault(
                    region, set()).add(subscription_id)
            if rule.depends_on("at") and not rule.at_prunable:
                self._always_at.add(subscription_id)
            affected = {subscription_id: rule}
            self._collect_dwell_crossings(now, affected)
            ordered = sorted(affected.values(), key=lambda r: r.seq)
            self.pruned += len(self._rules) - len(ordered)
            return self._evaluate(ordered, now)
        # Reference mode: the naive oracle re-evaluates everything.
        return self._evaluate_reference_epoch(now)

    def unsubscribe(self, subscription_id: str) -> bool:
        rule = self._rules.pop(subscription_id, None)
        if rule is None:
            return False
        if self.mode == MODE_INCREMENTAL:
            assert self._kb is not None
            self._kb.remove_predicate(rule.internal, rule.arity)
            for rect in self._rtree_entries.pop(subscription_id, ()):
                self._rtree.delete(
                    rect, lambda value: value == subscription_id)
            for region in rule.region_atoms:
                subscribers = self._region_subscribers.get(region)
                if subscribers is not None:
                    subscribers.discard(subscription_id)
                    if not subscribers:
                        del self._region_subscribers[region]
            self._always_at.discard(subscription_id)
        return True

    def rules(self) -> List[SemanticRule]:
        return sorted(self._rules.values(), key=lambda r: r.seq)

    def active_solutions(self,
                         subscription_id: str) -> List[Dict[str, str]]:
        rule = self._rules[subscription_id]
        return [dict(zip(rule.head_vars, solution))
                for solution in sorted(rule.previous)]

    # ------------------------------------------------------------------
    # Declared application facts
    # ------------------------------------------------------------------

    def declare_fact(self, functor: str, *args: str,
                     now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Assert an application fact (e.g. ``team(alice, blue)``)."""
        now = self._time if now is None else max(now, self._time)
        self._time = now
        bucket = self._facts.setdefault(functor, set())
        if tuple(args) in bucket:
            return []
        bucket.add(tuple(args))
        if self.mode == MODE_INCREMENTAL:
            assert self._kb is not None
            self._kb.add_fact(functor, *args)
            affected = {rule.subscription_id: rule
                        for rule in self._rules.values()
                        if functor in rule.fact_functors}
            self._collect_dwell_crossings(now, affected)
            ordered = sorted(affected.values(), key=lambda r: r.seq)
            self.pruned += len(self._rules) - len(ordered)
            return self._evaluate(ordered, now)
        return self._evaluate_reference_epoch(now)

    def retract_fact(self, functor: str, *args: str,
                     now: Optional[float] = None) -> List[Dict[str, Any]]:
        now = self._time if now is None else max(now, self._time)
        self._time = now
        bucket = self._facts.get(functor)
        if bucket is None or tuple(args) not in bucket:
            return []
        bucket.discard(tuple(args))
        if self.mode == MODE_INCREMENTAL:
            assert self._kb is not None
            self._kb.remove_fact(functor, *args)
            affected = {rule.subscription_id: rule
                        for rule in self._rules.values()
                        if functor in rule.fact_functors}
            self._collect_dwell_crossings(now, affected)
            ordered = sorted(affected.values(), key=lambda r: r.seq)
            self.pruned += len(self._rules) - len(ordered)
            return self._evaluate(ordered, now)
        return self._evaluate_reference_epoch(now)

    def _collect_dwell_crossings(self, now: float,
                                 affected: Dict[str, SemanticRule]) -> None:
        """Settle expired dwell windows and fold the subscriptions
        they touch into ``affected``."""
        for obj, region, literal in self._settle_dwell(now):
            for rule in self._rules.values():
                if rule.dwell_matches(literal, obj, region):
                    affected[rule.subscription_id] = rule

    # ------------------------------------------------------------------
    # The epoch driver
    # ------------------------------------------------------------------

    def on_update(self, update: LocationUpdate) -> List[Dict[str, Any]]:
        """Feed one fused result; returns the semantic events it causes."""
        now = max(update.time, self._time)
        self._time = now
        self.epochs += 1
        object_id = update.object_id

        old_region = self._regions.get(object_id)
        old_center = self._positions.get(object_id)
        new_region = update.region

        # --- shared bookkeeping (identical in both modes) -------------
        old_chain = set(containment_chain(old_region))
        new_chain = set(containment_chain(new_region))
        entered = new_chain - old_chain
        left = old_chain - new_chain
        for region in entered:
            self._entries[(object_id, region)] = now
        for region in left:
            self._entries.pop((object_id, region), None)
        self._positions[object_id] = update.center
        self._regions[object_id] = new_region

        near_flips = self._near_flips(object_id, old_center, update.center)

        if self.mode == MODE_REFERENCE:
            return self._evaluate_reference_epoch(now)

        # --- incremental delta maintenance ----------------------------
        assert self._kb is not None
        kb = self._kb
        affected: Dict[str, SemanticRule] = {}

        if new_region != old_region:
            if old_region is not None:
                kb.remove_fact("at", object_id, old_region)
            if new_region is not None:
                kb.add_fact("at", object_id, new_region)
            # Retract dwell facts for regions the object left; schedule
            # deadlines for regions it entered.
            for region in left:
                for literal in self._dwell_literals:
                    key = (object_id, region, literal)
                    if key in self._asserted_dwell:
                        self._asserted_dwell.discard(key)
                        kb.remove_fact(
                            "dwell", object_id, region,
                            self._near_literal_key(literal))
            for region in entered:
                for literal in self._dwell_literals:
                    heapq.heappush(
                        self._dwell_heap,
                        (now + literal, next(self._heap_seq),
                         object_id, region, literal))
            # R-tree probe: only regions whose containment flipped can
            # change a concrete-region atom.  The geometric probe
            # narrows (adjacent rooms touch, so it over-approximates);
            # the exact name index covers regions without geometry.
            flipped = entered | left
            probe_ids: Set[str] = set()
            for region in flipped:
                rect = self._mbr(region)
                if rect is not None:
                    probe_ids.update(self._rtree.search(rect))
                probe_ids.update(
                    self._region_subscribers.get(region, ()))
            for sid in probe_ids:
                rule = self._rules.get(sid)
                if rule is None:
                    continue
                # A concrete-region atom's truth rides on containment
                # chains by *name* — keep only rules naming a region
                # that actually flipped.
                if any(region in flipped for region in rule.region_atoms):
                    affected[sid] = rule
            for sid in self._always_at:
                rule = self._rules.get(sid)
                if rule is not None:
                    affected[sid] = rule

        for threshold, a, b, closed in near_flips:
            literal = self._near_literal_key(threshold)
            if closed:
                kb.add_fact("near", a, b, literal)
                kb.add_fact("near", b, a, literal)
            else:
                kb.remove_fact("near", a, b, literal)
                kb.remove_fact("near", b, a, literal)
            for rule in self._rules.values():
                if rule.near_matches(threshold, a, b):
                    affected[rule.subscription_id] = rule

        self._collect_dwell_crossings(now, affected)

        ordered = sorted(affected.values(), key=lambda r: r.seq)
        self.pruned += len(self._rules) - len(ordered)
        return self._evaluate(ordered, now)

    def tick(self, now: float) -> List[Dict[str, Any]]:
        """Advance the sim clock without a location change.

        Dwell windows that expire by ``now`` fire exactly as they
        would on the next location update.
        """
        now = max(now, self._time)
        self._time = now
        if self.mode == MODE_REFERENCE:
            return self._evaluate_reference_epoch(now)
        assert self._kb is not None
        affected: Dict[str, SemanticRule] = {}
        self._collect_dwell_crossings(now, affected)
        ordered = sorted(affected.values(), key=lambda r: r.seq)
        self.pruned += len(self._rules) - len(ordered)
        return self._evaluate(ordered, now)

    # ------------------------------------------------------------------
    # Near / dwell maintenance
    # ------------------------------------------------------------------

    def _near_flips(self, object_id: str,
                    old_center: Optional[Tuple[float, float]],
                    new_center: Tuple[float, float],
                    ) -> List[Tuple[float, str, str, bool]]:
        """Exact pair flips for the moved object at every threshold.

        Returns ``(threshold, moved, other, closed)`` tuples; the
        shared ``self._near_pairs`` state is updated in both modes so
        the reference engine can re-assert the full pair set.
        """
        flips: List[Tuple[float, str, str, bool]] = []
        if not self._near_pairs:
            return flips
        for other, center in self._positions.items():
            if other == object_id:
                continue
            distance = ((center[0] - new_center[0]) ** 2
                        + (center[1] - new_center[1]) ** 2) ** 0.5
            pair = frozenset((object_id, other))
            for threshold, pairs in self._near_pairs.items():
                inside = distance < threshold
                was = pair in pairs
                if inside and not was:
                    pairs.add(pair)
                    flips.append((threshold, object_id, other, True))
                elif was and not inside:
                    pairs.discard(pair)
                    flips.append((threshold, object_id, other, False))
        return flips

    def _ensure_near_threshold(self, threshold: float) -> None:
        if threshold in self._near_pairs:
            return
        pairs: Set[FrozenSet[str]] = set()
        objects = list(self._positions.items())
        for i, (a, ca) in enumerate(objects):
            for b, cb in objects[i + 1:]:
                distance = ((ca[0] - cb[0]) ** 2
                            + (ca[1] - cb[1]) ** 2) ** 0.5
                if distance < threshold:
                    pairs.add(frozenset((a, b)))
        self._near_pairs[threshold] = pairs
        if self.mode == MODE_INCREMENTAL:
            assert self._kb is not None
            for pair in pairs:
                a, b = sorted(pair)
                self._assert_near(self._kb, a, b, threshold)

    def _ensure_dwell_literal(self, duration: float, now: float) -> None:
        if duration in self._dwell_literals:
            return
        self._dwell_literals.add(duration)
        if self.mode != MODE_INCREMENTAL:
            return
        assert self._kb is not None
        for (obj, region), entry in self._entries.items():
            deadline = entry + duration
            if deadline <= now:
                key = (obj, region, duration)
                if key not in self._asserted_dwell:
                    self._asserted_dwell.add(key)
                    self._kb.add_fact("dwell", obj, region,
                                      self._near_literal_key(duration))
            else:
                heapq.heappush(
                    self._dwell_heap,
                    (deadline, next(self._heap_seq), obj, region, duration))

    def _settle_dwell(self, now: float) -> List[Tuple[str, str, float]]:
        """Assert dwell facts whose deadline has passed; returns the
        newly satisfied ``(object, region, duration)`` windows."""
        if self.mode != MODE_INCREMENTAL:
            return []
        assert self._kb is not None
        crossed: List[Tuple[str, str, float]] = []
        while self._dwell_heap and self._dwell_heap[0][0] <= now:
            deadline, _, obj, region, literal = heapq.heappop(
                self._dwell_heap)
            entry = self._entries.get((obj, region))
            if entry is None or entry + literal != deadline:
                continue  # stale: the object left (or re-entered) since
            key = (obj, region, literal)
            if key in self._asserted_dwell:
                continue
            self._asserted_dwell.add(key)
            self._kb.add_fact("dwell", obj, region,
                              self._near_literal_key(literal))
            crossed.append((obj, region, literal))
        return crossed

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _solutions(self, kb: KnowledgeBase,
                   rule: SemanticRule) -> Set[Tuple[str, ...]]:
        goal = Struct(rule.internal,
                      tuple(Var(f"V{i}") for i in range(rule.arity)))
        solutions: Set[Tuple[str, ...]] = set()
        for answer in kb.query(goal):
            solutions.add(tuple(answer[f"V{i}"]
                                for i in range(rule.arity)))
        return solutions

    def _evaluate(self, rules: List[SemanticRule], now: float,
                  kb: Optional[KnowledgeBase] = None,
                  ) -> List[Dict[str, Any]]:
        """Re-derive ``rules`` (registration order) and edge-detect.

        Solution sets are canonically sorted before diffing, so the
        emitted stream does not depend on SLD enumeration order —
        this is what makes incremental and reference observably
        identical.
        """
        kb = kb if kb is not None else self._kb
        assert kb is not None
        events: List[Dict[str, Any]] = []
        for rule in rules:
            current = self._solutions(kb, rule)
            self.evaluated += 1
            entered = sorted(current - rule.previous)
            departed = sorted(rule.previous - current)
            rule.previous = current
            for solution in entered:
                events.append(self._event(rule, TRANSITION_ENTER,
                                          solution, now))
            for solution in departed:
                events.append(self._event(rule, TRANSITION_LEAVE,
                                          solution, now))
        self.events_emitted += len(events)
        return events

    def _event(self, rule: SemanticRule, transition: str,
               solution: Tuple[str, ...], now: float) -> Dict[str, Any]:
        return {
            "subscription_id": rule.subscription_id,
            "transition": transition,
            "head": rule.head_functor,
            "bindings": dict(zip(rule.head_vars, solution)),
            "rule": rule.text,
            "time": now,
        }

    # ------------------------------------------------------------------
    # The naive oracle
    # ------------------------------------------------------------------

    def _reference_kb(self, now: float) -> KnowledgeBase:
        """Re-assert *all* facts into a fresh knowledge base."""
        kb = self._base_kb()
        for object_id, region in self._regions.items():
            if region is not None:
                kb.add_fact("at", object_id, region)
        for threshold, pairs in self._near_pairs.items():
            for pair in pairs:
                a, b = sorted(pair)
                self._assert_near(kb, a, b, threshold)
        for (obj, region), entry in self._entries.items():
            for literal in self._dwell_literals:
                if now - entry >= literal:
                    kb.add_fact("dwell", obj, region,
                                self._near_literal_key(literal))
        for functor, tuples in self._facts.items():
            for args in sorted(tuples):
                kb.add_fact(functor, *args)
        for rule in self.rules():
            kb.add(self._rewrite_near_dwell_literals(rule))
        return kb

    def _evaluate_reference_epoch(self, now: float) -> List[Dict[str, Any]]:
        """Full re-evaluation: every fact re-asserted, every rule
        re-run (the bit-exact oracle)."""
        kb = self._reference_kb(now)
        return self._evaluate(self.rules(), now, kb=kb)

    def evaluate_reference(self, now: Optional[float] = None,
                           ) -> List[Dict[str, Any]]:
        """Run one naive full re-evaluation epoch right now.

        Available in both modes; in incremental mode it does *not*
        touch the incremental state beyond the shared solution sets,
        so it is only meant for reference-mode engines and debugging.
        """
        now = self._time if now is None else max(now, self._time)
        self._time = now
        return self._evaluate_reference_epoch(now)

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "mode": self.mode,  # type: ignore[dict-item]
            "subscriptions": len(self._rules),
            "epochs": self.epochs,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "kb_rebuilds": self.kb_rebuilds,
            "events": self.events_emitted,
            "near_thresholds": len(self._near_pairs),
            "dwell_pending": len(self._dwell_heap),
        }
