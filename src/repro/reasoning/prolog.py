"""A small backward-chaining logic engine (the paper's XSB Prolog role).

"The Location Service reasons further about these relations using XSB
Prolog" (Section 4.6.1).  We substitute a Horn-clause engine with
unification and depth-first SLD resolution: facts and rules go in, a
query enumerates variable bindings.  It is deliberately minimal — the
spatial rules it must run (reachability, co-location, accessibility)
are pure Datalog — but it is a real engine, not a lookup table.

Terms are atoms (lowercase or quoted strings), variables (capitalized
or ``_``-prefixed) and compound structures.  A convenience parser
accepts the usual textual syntax::

    kb.add("ecfp('SC/3/3105', 'SC/3/LabCorridor')")
    kb.add("reachable(X, Y) :- ecfp(X, Y)")
    kb.add("reachable(X, Y) :- ecfp(X, Z), reachable(Z, Y)")
    list(kb.query("reachable('SC/3/3105', Where)"))
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ReasoningError


@dataclass(frozen=True)
class Var:
    """A logic variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Atom:
    """A constant symbol (or any Python-string payload)."""

    value: str

    def __repr__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Struct:
    """A compound term: ``functor(arg1, ..., argN)``."""

    functor: str
    args: Tuple["Term", ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.functor}({inner})"


Term = Union[Var, Atom, Struct]
Bindings = Dict[str, Term]


@dataclass(frozen=True)
class Rule:
    """``head :- body``; facts are rules with an empty body."""

    head: Struct
    body: Tuple[Struct, ...] = ()


# A pending goal paired with the variant keys of its ancestor goals
# (for the tabling check in :meth:`KnowledgeBase._solve`).
_Goal = Tuple[Struct, "frozenset[str]"]


def variant_key(goal: Struct) -> str:
    """A canonical string for a goal, invariant under variable renaming.

    Unbound variables are numbered in order of first appearance, so
    ``reachable(a, Y__3)`` and ``reachable(a, Y__9)`` — the same goal
    re-derived through a cyclic passage graph with fresh renamings —
    map to the same key.  This is what lets the ancestor check behave
    like visited-goal tabling instead of an exact-repr comparison.
    """
    mapping: Dict[str, str] = {}
    parts: List[str] = []

    def visit(term: Term) -> None:
        if isinstance(term, Var):
            if term.name not in mapping:
                mapping[term.name] = f"_G{len(mapping)}"
            parts.append(mapping[term.name])
        elif isinstance(term, Atom):
            parts.append("a\x00" + term.value)
        else:
            parts.append(term.functor + "(")
            for arg in term.args:
                visit(arg)
                parts.append(",")
            parts.append(")")

    visit(goal)
    return "".join(parts)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<quoted>'(?:[^'\\]|\\.)*')|(?P<name>[A-Za-z0-9_\-./]+)"
    r"|(?P<punct>:-|[(),]))"
)


def _tokenize(text: str) -> List[str]:
    stripped = text.strip()
    tokens: List[str] = []
    pos = 0
    while pos < len(stripped):
        match = _TOKEN_RE.match(stripped, pos)
        if match is None or match.end() == pos:
            raise ReasoningError(f"cannot tokenize {stripped[pos:]!r}")
        token = match.group(match.lastgroup)  # type: ignore[arg-type]
        if token is not None:
            tokens.append(token)
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text.strip().rstrip("."))
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None:
            raise ReasoningError("unexpected end of clause")
        if expected is not None and token != expected:
            raise ReasoningError(f"expected {expected!r}, got {token!r}")
        self.pos += 1
        return token

    def parse_term(self) -> Term:
        token = self.take()
        if token.startswith("'"):
            return Atom(token[1:-1].replace("\\'", "'"))
        if token in (":-", "(", ")", ","):
            raise ReasoningError(f"unexpected token {token!r}")
        if self.peek() == "(":
            self.take("(")
            args: List[Term] = [self.parse_term()]
            while self.peek() == ",":
                self.take(",")
                args.append(self.parse_term())
            self.take(")")
            return Struct(token, tuple(args))
        if token[0].isupper() or token[0] == "_":
            return Var(token)
        return Atom(token)

    def parse_struct(self) -> Struct:
        term = self.parse_term()
        if not isinstance(term, Struct):
            raise ReasoningError(f"expected a predicate, got {term!r}")
        return term

    def parse_clause(self) -> Rule:
        head = self.parse_struct()
        if self.peek() is None:
            return Rule(head)
        self.take(":-")
        body: List[Struct] = [self.parse_struct()]
        while self.peek() == ",":
            self.take(",")
            body.append(self.parse_struct())
        if self.peek() is not None:
            raise ReasoningError(f"trailing tokens in clause: {self.tokens[self.pos:]}")
        return Rule(head, tuple(body))


def parse_clause(text: str) -> Rule:
    """Parse ``head :- body`` (or a bare fact) into a :class:`Rule`."""
    return _Parser(text).parse_clause()


def parse_query(text: str) -> Struct:
    """Parse a goal like ``reachable(X, 'SC/3/3105')``."""
    parser = _Parser(text)
    goal = parser.parse_struct()
    if parser.peek() is not None:
        raise ReasoningError("a query must be a single goal")
    return goal


# ----------------------------------------------------------------------
# Unification
# ----------------------------------------------------------------------

def walk(term: Term, bindings: Bindings) -> Term:
    """Follow variable bindings to the representative term."""
    while isinstance(term, Var) and term.name in bindings:
        term = bindings[term.name]
    return term


def unify(a: Term, b: Term, bindings: Bindings) -> Optional[Bindings]:
    """Unify two terms, returning extended bindings or ``None``."""
    a = walk(a, bindings)
    b = walk(b, bindings)
    if isinstance(a, Var):
        if isinstance(b, Var) and b.name == a.name:
            return bindings
        new = dict(bindings)
        new[a.name] = b
        return new
    if isinstance(b, Var):
        new = dict(bindings)
        new[b.name] = a
        return new
    if isinstance(a, Atom) and isinstance(b, Atom):
        return bindings if a.value == b.value else None
    if isinstance(a, Struct) and isinstance(b, Struct):
        if a.functor != b.functor or len(a.args) != len(b.args):
            return None
        current: Optional[Bindings] = bindings
        for left, right in zip(a.args, b.args):
            current = unify(left, right, current)
            if current is None:
                return None
        return current
    return None


def resolve(term: Term, bindings: Bindings) -> Term:
    """Substitute bindings all the way down."""
    term = walk(term, bindings)
    if isinstance(term, Struct):
        return Struct(term.functor,
                      tuple(resolve(a, bindings) for a in term.args))
    return term


def _head_compatible(goal_args: Tuple[Term, ...],
                     head_args: Tuple[Term, ...]) -> bool:
    """Whether a clause head could possibly unify with a resolved goal.

    A sound reject-only prefilter run before the clause is renamed: any
    argument position where both sides are already concrete and clash
    (different atoms, atom vs compound, compound functor/arity mismatch)
    proves unification must fail, so the rename + unify attempt is
    skipped.  Positions involving variables always pass — only
    :func:`unify` decides those.  The goal side must be fully resolved
    against the current bindings (``_solve`` guarantees this).
    """
    for goal_arg, head_arg in zip(goal_args, head_args):
        if isinstance(goal_arg, Atom):
            if isinstance(head_arg, Atom):
                if goal_arg.value != head_arg.value:
                    return False
            elif isinstance(head_arg, Struct):
                return False
        elif isinstance(goal_arg, Struct):
            if isinstance(head_arg, Atom):
                return False
            if isinstance(head_arg, Struct) and (
                    goal_arg.functor != head_arg.functor
                    or len(goal_arg.args) != len(head_arg.args)):
                return False
    return True


# ----------------------------------------------------------------------
# The knowledge base
# ----------------------------------------------------------------------

class KnowledgeBase:
    """Facts + rules + SLD resolution with tabling and a depth limit.

    Two complementary termination guards stand in for XSB's tabling:

    * a **variant ancestor check** — a goal that is a renaming variant
      of one of its own ancestors is pruned, which terminates cyclic
      reachability (including recursion through fresh variables that
      an exact-repr comparison misses);
    * a **depth guard** — resolution that still descends past
      ``max_depth`` goal expansions on one branch (e.g. recursion
      through a growing function symbol, which never revisits a
      variant) raises :class:`ReasoningError` instead of silently
      truncating the answer set.

    The variant check is sound for the shipped right-recursive spatial
    rules; left-recursive rules whose recursive call repeats the
    original argument pattern are terminated rather than fully
    enumerated.
    """

    def __init__(self, max_depth: int = 256) -> None:
        self._rules: Dict[Tuple[str, int], List[Rule]] = {}
        # Lazily built argument indexes per predicate: for an argument
        # position, clauses whose head holds a ground atom there are
        # grouped by that atom's value; clauses with anything else
        # (variables, compounds) at that position go in a generic list
        # that every lookup must also scan.  Invalidated on any
        # mutation of the predicate's bucket; rebuilt on the next goal
        # that arrives with that argument bound.
        self._arg_index: Dict[
            Tuple[str, int],
            Dict[int, Tuple[Dict[str, List[Tuple[int, Rule]]],
                            List[Tuple[int, Rule]]]]] = {}
        self._fresh = itertools.count(1)
        self.max_depth = max_depth

    def add(self, clause: Union[str, Rule]) -> None:
        """Add a fact or rule (textual or parsed)."""
        rule = parse_clause(clause) if isinstance(clause, str) else clause
        key = (rule.head.functor, len(rule.head.args))
        self._rules.setdefault(key, []).append(rule)
        self._arg_index.pop(key, None)

    def add_fact(self, functor: str, *args: str) -> None:
        """Convenience: add ``functor(args...)`` with atom arguments."""
        self.add(Rule(Struct(functor, tuple(Atom(a) for a in args))))

    def remove_fact(self, functor: str, *args: str) -> bool:
        """Retract the first ground fact ``functor(args...)``.

        Returns whether a matching fact existed.  Only facts (empty
        body) with exactly these atom arguments are removed; rules are
        untouched.  This is the retract half of the delta maintenance
        the incremental semantic engine performs.
        """
        key = (functor, len(args))
        target = Struct(functor, tuple(Atom(a) for a in args))
        rules = self._rules.get(key)
        if not rules:
            return False
        for index, rule in enumerate(rules):
            if not rule.body and rule.head == target:
                del rules[index]
                if not rules:
                    del self._rules[key]
                self._arg_index.pop(key, None)
                return True
        return False

    def remove_predicate(self, functor: str, arity: int) -> int:
        """Drop every clause whose head is ``functor/arity``.

        Returns the number of clauses removed.  Used to retract a
        semantic subscription's compiled rule from a long-lived
        knowledge base.
        """
        removed = self._rules.pop((functor, arity), None)
        self._arg_index.pop((functor, arity), None)
        return len(removed) if removed is not None else 0

    def clause_count(self) -> int:
        return sum(len(rules) for rules in self._rules.values())

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def _candidate_clauses(self, key: Tuple[str, int],
                           goal_args: Tuple[Term, ...]) -> Sequence[Rule]:
        """The bucket for ``key``, narrowed by an argument index.

        The first goal argument that is a ground atom selects the
        index: only clauses whose head holds that same atom at that
        position — plus clauses with a variable or compound there —
        can unify, so the rest of the bucket is never even scanned.
        Clause order is preserved (entries carry their bucket
        position), so solution enumeration order is identical with and
        without the index.
        """
        bucket = self._rules.get(key)
        if not bucket:
            return ()
        bound = next((i for i, arg in enumerate(goal_args)
                      if isinstance(arg, Atom)), None)
        if bound is None:
            return bucket
        positions = self._arg_index.setdefault(key, {})
        index = positions.get(bound)
        if index is None:
            by_value: Dict[str, List[Tuple[int, Rule]]] = {}
            generic: List[Tuple[int, Rule]] = []
            for position, rule in enumerate(bucket):
                head_arg = rule.head.args[bound]
                if isinstance(head_arg, Atom):
                    by_value.setdefault(head_arg.value, []).append(
                        (position, rule))
                else:
                    generic.append((position, rule))
            index = (by_value, generic)
            positions[bound] = index
        by_value, generic = index
        matching = by_value.get(goal_args[bound].value, [])
        if not generic:
            return [rule for _, rule in matching]
        if not matching:
            return [rule for _, rule in generic]
        return [rule for position, rule in sorted(
            matching + generic, key=lambda entry: entry[0])]

    def _rename(self, rule: Rule) -> Rule:
        suffix = f"__{next(self._fresh)}"
        mapping: Dict[str, Var] = {}

        def rn(term: Term) -> Term:
            if isinstance(term, Var):
                if term.name not in mapping:
                    mapping[term.name] = Var(term.name + suffix)
                return mapping[term.name]
            if isinstance(term, Struct):
                return Struct(term.functor, tuple(rn(a) for a in term.args))
            return term

        head = rn(rule.head)
        assert isinstance(head, Struct)
        body = tuple(rn(goal) for goal in rule.body)
        return Rule(head, body)  # type: ignore[arg-type]

    def _solve(self, goals: Sequence["_Goal"], bindings: Bindings,
               depth: int) -> Iterator[Bindings]:
        if depth > self.max_depth:
            raise ReasoningError(
                f"resolution exceeded max_depth={self.max_depth}; "
                f"the rule set recurses without revisiting a goal "
                f"variant (pending goal: {goals[0][0]!r})")
        if not goals:
            yield bindings
            return
        (goal, ancestors), rest = goals[0], goals[1:]
        resolved_goal = resolve(goal, bindings)
        assert isinstance(resolved_goal, Struct)
        # Built-in: distinct(A, B) succeeds when both arguments are
        # ground atoms with different values (used by semantic rules
        # to keep pair bindings irreflexive).
        if resolved_goal.functor == "distinct" and len(resolved_goal.args) == 2:
            left, right = resolved_goal.args
            if (isinstance(left, Atom) and isinstance(right, Atom)
                    and left.value != right.value):
                yield from self._solve(tuple(rest), bindings, depth)
            return
        # Tabling check: re-deriving a goal that is a variant of one of
        # its own ancestors cannot produce answers its ancestor would
        # not (this is the cheap stand-in for XSB's tabling; it makes
        # cyclic reachability terminate even when renaming gives the
        # revisited goal fresh variable names).
        goal_key = variant_key(resolved_goal)
        if goal_key in ancestors:
            return
        key = (resolved_goal.functor, len(resolved_goal.args))
        child_ancestors = ancestors | {goal_key}
        goal_args = resolved_goal.args
        for rule in self._candidate_clauses(key, goal_args):
            if not _head_compatible(goal_args, rule.head.args):
                continue
            # Renaming a variable-free clause is the identity, so ground
            # facts (the bulk of a spatial knowledge base) skip it.
            if rule.body or any(isinstance(a, Var) or isinstance(a, Struct)
                                for a in rule.head.args):
                renamed = self._rename(rule)
            else:
                renamed = rule
            unified = unify(renamed.head, resolved_goal, bindings)
            if unified is None:
                continue
            body = tuple((g, child_ancestors) for g in renamed.body)
            yield from self._solve(body + tuple(rest), unified, depth + 1)

    def query(self, goal: Union[str, Struct]) -> Iterator[Dict[str, str]]:
        """Enumerate solutions as {variable: atom-string} dicts.

        Duplicate solutions (different proofs, same bindings) are
        collapsed.
        """
        parsed = parse_query(goal) if isinstance(goal, str) else goal
        query_vars = _collect_vars(parsed)
        seen = set()
        start: Tuple[_Goal, ...] = ((parsed, frozenset()),)
        for bindings in self._solve(start, {}, 0):
            answer = {}
            for name in query_vars:
                value = resolve(Var(name), bindings)
                answer[name] = value.value if isinstance(value, Atom) \
                    else repr(value)
            key = tuple(sorted(answer.items()))
            if key not in seen:
                seen.add(key)
                yield answer

    def ask(self, goal: Union[str, Struct]) -> bool:
        """Whether the goal has at least one solution."""
        return next(iter(self.query(goal)), None) is not None


def _collect_vars(term: Term) -> List[str]:
    out: List[str] = []

    def visit(t: Term) -> None:
        if isinstance(t, Var) and t.name not in out:
            out.append(t.name)
        elif isinstance(t, Struct):
            for arg in t.args:
                visit(arg)

    visit(term)
    return out
