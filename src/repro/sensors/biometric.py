"""Biometric-login adapter (paper Section 6, item 3).

"A biometric authentication adapter provides two different location
readings to MiddleWhere: a short-term reading, and a longer-term
reading.  For short-term reading, we set the expiration time to 30
seconds, define a small area (a circle centered at the device position
with a radius of 2 feet), set y = 0.99, z = 0.01 and x = 1. ... In the
second reading, we set the expiration time to T minutes ... the area
is set to the whole room, and z is set to the probability of a user
leaving the room before T and without manual logout.

If a user elects to logout manually ... the adapter feeds the system
with a short-term location reading, where expiration time is 15
seconds, radius is 2 feet ... The adapter also forces all location
information relating to that user and obtained from the same device to
expire immediately."

Because the short and long readings have different specs (TTL, area,
z), the adapter registers *two* sensor rows in the database:
``<id>`` for short-term readings and ``<id>-room`` for the long-term
room reading.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import LinearTDF, SensorSpec, StepTDF
from repro.geometry import Point
from repro.sensors.base import LocationAdapter
from repro.spatialdb import SpatialDatabase

BIOMETRIC_RADIUS_FT = 2.0
BIOMETRIC_Y = 0.99
BIOMETRIC_Z = 0.01
SHORT_TTL_S = 30.0
LOGOUT_TTL_S = 15.0
DEFAULT_LONG_TTL_S = 15.0 * 60.0  # "we found that T=15 minutes is reasonable"
DEFAULT_LEAVE_PROBABILITY = 0.3   # z of the long reading


def biometric_short_spec() -> SensorSpec:
    """Short-term reading: the user's finger was just on the device."""
    return SensorSpec(
        sensor_type=BiometricAdapter.ADAPTER_TYPE,
        carry_probability=1.0,   # "x = 1 (because of our assumptions)"
        detection_probability=BIOMETRIC_Y,
        misident_probability=BIOMETRIC_Z,
        z_area_scaled=False,
        resolution=BIOMETRIC_RADIUS_FT,
        time_to_live=SHORT_TTL_S,
        # Full confidence for 10 s, then stepped down as the user may
        # step away ("discrete manner", Section 3.2).
        tdf=StepTDF([(10.0, 0.8), (20.0, 0.6)]),
    )


def biometric_long_spec(long_ttl: float = DEFAULT_LONG_TTL_S,
                        leave_probability: float = DEFAULT_LEAVE_PROBABILITY
                        ) -> SensorSpec:
    """Long-term reading: the user is somewhere in the room for ~T."""
    return SensorSpec(
        sensor_type=BiometricAdapter.ADAPTER_TYPE + "-room",
        carry_probability=1.0,
        detection_probability=BIOMETRIC_Y,
        misident_probability=leave_probability,
        z_area_scaled=False,
        resolution=None,  # symbolic: the whole room
        time_to_live=long_ttl,
        # "confidence will degrade with time anyway": down to zero at T.
        tdf=LinearTDF(zero_at=long_ttl),
    )


class BiometricAdapter(LocationAdapter):
    """A fingerprint reader (or similar) at a fixed position in a room.

    Args:
        device_position: native-frame position of the reader.
        room_glob: the room the long-term reading covers; defaults to
            ``glob_prefix``.
    """

    ADAPTER_TYPE = "Biometric"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 device_position: Point,
                 room_glob: Optional[str] = None,
                 long_ttl: float = DEFAULT_LONG_TTL_S,
                 leave_probability: float = DEFAULT_LEAVE_PROBABILITY,
                 frame: Optional[str] = None) -> None:
        super().__init__(adapter_id, glob_prefix, biometric_short_spec(),
                         frame)
        self.device_position = device_position
        self.room_glob = room_glob if room_glob is not None else glob_prefix
        self.long_spec = biometric_long_spec(long_ttl, leave_probability)
        self.long_sensor_id = f"{adapter_id}-room"
        self.logout_spec = SensorSpec(
            sensor_type=self.ADAPTER_TYPE + "-logout",
            carry_probability=1.0,
            detection_probability=BIOMETRIC_Y,
            misident_probability=BIOMETRIC_Z,
            resolution=BIOMETRIC_RADIUS_FT,
            time_to_live=LOGOUT_TTL_S,
        )
        self.logout_sensor_id = f"{adapter_id}-logout"

    def attach(self, db: SpatialDatabase) -> "BiometricAdapter":
        super().attach(db)
        for sensor_id, spec in ((self.long_sensor_id, self.long_spec),
                                (self.logout_sensor_id, self.logout_spec)):
            db.register_sensor(
                sensor_id=sensor_id,
                sensor_type=spec.sensor_type,
                confidence=spec.confidence_percent(),
                time_to_live=spec.time_to_live,
                spec=spec,
            )
        return self

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def authentication(self, user_id: str, time: float) -> List[int]:
        """A successful fingerprint match: emit short + long readings."""
        emitted: List[int] = []
        short = self._emit_circle(user_id, self.device_position,
                                  BIOMETRIC_RADIUS_FT, time)
        if short is not None:
            emitted.append(short)
        # The long-term room reading is delivered under its own sensor
        # id so its distinct TTL/z apply.
        rect = self.database.world.resolve_symbolic(self.room_glob)
        long_id = self._deliver(self.long_sensor_id,
                                self.long_spec.sensor_type, user_id, rect,
                                time)
        if long_id is not None:
            emitted.append(long_id)
        return emitted

    def logout(self, user_id: str, time: float) -> Optional[int]:
        """A manual logout: expire this device's prior readings for the
        user and emit the 15-second "leaving now" reading."""
        self.database.expire_object_readings(user_id, self.adapter_id)
        self.database.expire_object_readings(user_id, self.long_sensor_id)
        canonical = self._canonical_point(self.device_position)
        from repro.geometry import Rect
        rect = Rect.from_center(canonical, BIOMETRIC_RADIUS_FT)
        return self._deliver(self.logout_sensor_id,
                             self.logout_spec.sensor_type, user_id, rect,
                             time, location=canonical,
                             detection_radius=BIOMETRIC_RADIUS_FT)
