"""GPS adapter (paper Section 6, item 4).

"The GPS device tries to achieve a satellite lock.  If successful, the
adapter should be able to translate longitude, latitude, and altitude
information into a coordinate location that matches MiddleWhere's
coordinate system.  Unlike the above technologies, GPS can give an
estimation of its accuracy; therefore, the adapter uses this value for
calculating the confidence values. ... We can set y = 0.99 and
z = 0.01 (assuming that the accuracy estimate of the GPS is correct),
however, x will still equal the probability of a person not carrying
his GPS device."

The geodetic-to-local translation uses an equirectangular projection
around a calibrated reference point — adequate at campus scale where
Earth curvature across the coverage area is negligible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core import ConstantTDF, SensorSpec
from repro.errors import CalibrationError
from repro.geometry import Point
from repro.sensors.base import LocationAdapter

GPS_Y = 0.99
GPS_Z = 0.01
GPS_TTL_S = 30.0

_EARTH_RADIUS_FT = 20_902_231.0  # mean Earth radius in feet


@dataclass(frozen=True)
class GeodeticCalibration:
    """Maps (latitude, longitude) onto the local coordinate frame.

    ``reference_lat``/``reference_lon`` (degrees) coincide with the
    native-frame point (``origin_x``, ``origin_y``).
    """

    reference_lat: float
    reference_lon: float
    origin_x: float = 0.0
    origin_y: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.reference_lat <= 90.0:
            raise CalibrationError(f"bad latitude {self.reference_lat}")
        if not -180.0 <= self.reference_lon <= 180.0:
            raise CalibrationError(f"bad longitude {self.reference_lon}")

    def to_local(self, lat: float, lon: float) -> Point:
        """Project a geodetic fix into the native frame (feet)."""
        lat_rad = math.radians(self.reference_lat)
        dy = math.radians(lat - self.reference_lat) * _EARTH_RADIUS_FT
        dx = (math.radians(lon - self.reference_lon)
              * _EARTH_RADIUS_FT * math.cos(lat_rad))
        return Point(self.origin_x + dx, self.origin_y + dy)

    def to_geodetic(self, point: Point) -> "tuple[float, float]":
        """The inverse projection (for tests and display)."""
        lat_rad = math.radians(self.reference_lat)
        lat = self.reference_lat + math.degrees(
            (point.y - self.origin_y) / _EARTH_RADIUS_FT)
        lon = self.reference_lon + math.degrees(
            (point.x - self.origin_x)
            / (_EARTH_RADIUS_FT * math.cos(lat_rad)))
        return lat, lon


def gps_spec(carry_probability: float = 0.8) -> SensorSpec:
    """The calibrated GPS spec; the per-fix accuracy arrives with each
    reading rather than living in the spec."""
    return SensorSpec(
        sensor_type=GpsAdapter.ADAPTER_TYPE,
        carry_probability=carry_probability,
        detection_probability=GPS_Y,
        misident_probability=GPS_Z,
        z_area_scaled=False,
        resolution=50.0,  # fallback when a fix carries no estimate
        time_to_live=GPS_TTL_S,
        tdf=ConstantTDF(),
    )


class GpsAdapter(LocationAdapter):
    """One user's GPS receiver, calibrated into the campus frame."""

    ADAPTER_TYPE = "GPS"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 calibration: GeodeticCalibration,
                 carry_probability: float = 0.8,
                 frame: Optional[str] = None) -> None:
        super().__init__(adapter_id, glob_prefix,
                         gps_spec(carry_probability), frame)
        self.calibration = calibration

    def fix(self, user_id: str, lat: float, lon: float, time: float,
            accuracy_ft: Optional[float] = None) -> Optional[int]:
        """A satellite fix.

        ``accuracy_ft`` is the device's own accuracy estimate ("If the
        GPS receiver estimates an accuracy of 15 feet, we set area A to
        a sphere with a radius of 15 feet").
        """
        radius = accuracy_ft if accuracy_ft is not None \
            else self.spec.resolution
        assert radius is not None
        local = self.calibration.to_local(lat, lon)
        return self._emit_circle(user_id, local, radius, time)
