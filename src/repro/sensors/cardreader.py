"""Card-reader adapter.

"People in our building have to swipe their ID cards on a card reader
whenever they enter certain rooms.  Hence, at the time of swiping
their card, their location is known with high confidence.  With the
passage of time, however, this location data becomes less reliable"
(Section 1.1).  Table 2 gives a card reader a 10-second time-to-live.

Card readers are *symbolic* sensors: a swipe means "inside this room",
not a coordinate (Section 3.2).
"""

from __future__ import annotations

from typing import Optional

from repro.core import LinearTDF, SensorSpec
from repro.sensors.base import LocationAdapter

CARD_Y = 0.98
CARD_Z = 0.02
CARD_TTL_S = 10.0


def card_reader_spec(ttl: float = CARD_TTL_S) -> SensorSpec:
    """The calibrated card-reader spec: certain at swipe, fading fast."""
    return SensorSpec(
        sensor_type=CardReaderAdapter.ADAPTER_TYPE,
        carry_probability=1.0,   # a swipe needs the person's own hand
        detection_probability=CARD_Y,
        misident_probability=CARD_Z,
        z_area_scaled=False,
        resolution=None,         # symbolic resolution: the room
        time_to_live=ttl,
        tdf=LinearTDF(zero_at=2.0 * ttl),
    )


class CardReaderAdapter(LocationAdapter):
    """A card reader on the door of one room.

    Args:
        room_glob: the room a successful swipe admits into; defaults
            to ``glob_prefix``.
    """

    ADAPTER_TYPE = "CardReader"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 room_glob: Optional[str] = None,
                 ttl: float = CARD_TTL_S,
                 frame: Optional[str] = None) -> None:
        super().__init__(adapter_id, glob_prefix, card_reader_spec(ttl),
                         frame)
        self.room_glob = room_glob if room_glob is not None else glob_prefix

    def swipe(self, user_id: str, time: float) -> Optional[int]:
        """A successful card swipe: the user is entering the room."""
        return self._emit_region(user_id, self.room_glob, time)
