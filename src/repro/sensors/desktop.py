"""Desktop-login adapter.

"Login information on desktops" (Section 1.1) is a location signal:
whoever is logged in at a fixed workstation is, while the session
stays active, probably within arm's reach of it.  Unlike biometrics
the credential can be shared or left logged in, so confidence is
lower and drains steadily until logout.
"""

from __future__ import annotations

from typing import Optional

from repro.core import ExponentialTDF, SensorSpec
from repro.geometry import Point
from repro.sensors.base import LocationAdapter

DESKTOP_RADIUS_FT = 3.0
DESKTOP_Y = 0.90
DESKTOP_Z = 0.10
DESKTOP_TTL_S = 10.0 * 60.0


def desktop_login_spec(ttl: float = DESKTOP_TTL_S) -> SensorSpec:
    """The calibrated desktop-login spec."""
    return SensorSpec(
        sensor_type=DesktopLoginAdapter.ADAPTER_TYPE,
        carry_probability=1.0,   # a login needs the person at the keyboard
        detection_probability=DESKTOP_Y,
        misident_probability=DESKTOP_Z,
        z_area_scaled=False,
        resolution=DESKTOP_RADIUS_FT,
        time_to_live=ttl,
        tdf=ExponentialTDF(half_life=ttl / 4.0),
    )


class DesktopLoginAdapter(LocationAdapter):
    """One workstation's login watcher.

    Args:
        workstation_position: native-frame position of the machine.
    """

    ADAPTER_TYPE = "DesktopLogin"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 workstation_position: Point,
                 ttl: float = DESKTOP_TTL_S,
                 frame: Optional[str] = None) -> None:
        super().__init__(adapter_id, glob_prefix, desktop_login_spec(ttl),
                         frame)
        self.workstation_position = workstation_position

    def login(self, user_id: str, time: float) -> Optional[int]:
        """The user logged in at the workstation."""
        return self._emit_circle(user_id, self.workstation_position,
                                 DESKTOP_RADIUS_FT, time)

    def activity(self, user_id: str, time: float) -> Optional[int]:
        """Keyboard/mouse activity refreshes the reading."""
        return self.login(user_id, time)

    def logout(self, user_id: str, time: float) -> int:
        """The user logged out: expire this workstation's readings."""
        return self.database.expire_object_readings(user_id, self.adapter_id)
