"""Location sensors and adapters (paper Section 6).

The plug-and-play adapter layer: each adapter wraps one location
technology, calibrates its readings into the common location model,
and feeds the spatial database.  Ships the paper's four technologies
(Ubisense UWB, RF badges, biometric logins, GPS) plus card readers,
Bluetooth stations and desktop logins.
"""

from repro.sensors.base import (
    AdapterRegistry,
    LocationAdapter,
    ReadingSink,
    default_registry,
)
from repro.sensors.biometric import (
    BiometricAdapter,
    biometric_long_spec,
    biometric_short_spec,
)
from repro.sensors.bluetooth import BluetoothAdapter, bluetooth_spec
from repro.sensors.cardreader import CardReaderAdapter, card_reader_spec
from repro.sensors.desktop import DesktopLoginAdapter, desktop_login_spec
from repro.sensors.gps import GeodeticCalibration, GpsAdapter, gps_spec
from repro.sensors.rfbadge import RfBadgeAdapter, rf_badge_spec
from repro.sensors.ubisense import UbisenseAdapter, ubisense_spec

__all__ = [
    "AdapterRegistry",
    "BiometricAdapter",
    "BluetoothAdapter",
    "CardReaderAdapter",
    "DesktopLoginAdapter",
    "GeodeticCalibration",
    "GpsAdapter",
    "LocationAdapter",
    "ReadingSink",
    "RfBadgeAdapter",
    "UbisenseAdapter",
    "biometric_long_spec",
    "biometric_short_spec",
    "bluetooth_spec",
    "card_reader_spec",
    "default_registry",
    "desktop_login_spec",
    "gps_spec",
    "rf_badge_spec",
    "ubisense_spec",
]
