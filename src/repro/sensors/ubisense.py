"""Ubisense UWB adapter (paper Section 6, item 1).

"Ubisense consists of tags and base stations that utilize Ultra
WideBand technology.  The base stations are able to pinpoint the
location of a tag within 6 inches 95% of the time. ... Area A is a
circle of radius 6" centered at the location returned by Ubisense,
where y = 0.95, and z = 0.05 * area(A)/area(U)."
"""

from __future__ import annotations

from typing import Optional

from repro.core import ConstantTDF, SensorSpec
from repro.geometry import Point
from repro.sensors.base import LocationAdapter

# 6 inches, in the feet the world model is measured in.
UBISENSE_RADIUS_FT = 0.5
UBISENSE_Y = 0.95
UBISENSE_Z0 = 0.05
UBISENSE_TTL_S = 3.0  # Table 2's Ubisense time-to-live


def ubisense_spec(carry_probability: float = 0.9) -> SensorSpec:
    """The calibrated Ubisense sensor spec.

    ``carry_probability`` (the paper's ``x``) "is calculated from user
    studies which measure what percentage of time the user carries his
    badge with him" — it is deployment-specific, so it is the one knob.
    """
    return SensorSpec(
        sensor_type=UbisenseAdapter.ADAPTER_TYPE,
        carry_probability=carry_probability,
        detection_probability=UBISENSE_Y,
        misident_probability=UBISENSE_Z0,
        z_area_scaled=True,
        resolution=UBISENSE_RADIUS_FT,
        time_to_live=UBISENSE_TTL_S,
        tdf=ConstantTDF(),
    )


class UbisenseAdapter(LocationAdapter):
    """Wraps a set of UWB base stations covering one area."""

    ADAPTER_TYPE = "Ubisense"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 carry_probability: float = 0.9,
                 frame: Optional[str] = None) -> None:
        super().__init__(adapter_id, glob_prefix,
                         ubisense_spec(carry_probability), frame)

    def tag_sighting(self, tag_id: str, position: Point,
                     time: float) -> Optional[int]:
        """A base-station fix of tag ``tag_id`` at a native-frame point.

        The reading is the 6-inch circle around the fix, normalized to
        its bounding square in the canonical frame.
        """
        return self._emit_circle(tag_id, position, UBISENSE_RADIUS_FT, time)
