"""Bluetooth-presence adapter.

The paper lists Bluetooth among the technologies MiddleWhere can
absorb ("Location information can be got from RF-based badges,
Ubisense tags, card swipes, login information on desktops, fingerprint
recognizers, Bluetooth, etc.", Section 1.1).  A station performing
periodic inquiry scans reports which devices answered; the reading is
the station's coverage circle, like RF badges but with the lower
confidence typical of class-2 Bluetooth discovery.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core import ExponentialTDF, SensorSpec
from repro.geometry import Point
from repro.sensors.base import LocationAdapter

BLUETOOTH_RANGE_FT = 30.0
BLUETOOTH_Y = 0.70
BLUETOOTH_Z0 = 0.30
BLUETOOTH_TTL_S = 90.0


def bluetooth_spec(carry_probability: float = 0.9) -> SensorSpec:
    """The calibrated Bluetooth spec: wide, weak, slow to refresh."""
    return SensorSpec(
        sensor_type=BluetoothAdapter.ADAPTER_TYPE,
        carry_probability=carry_probability,
        detection_probability=BLUETOOTH_Y,
        misident_probability=BLUETOOTH_Z0,
        z_area_scaled=True,
        resolution=BLUETOOTH_RANGE_FT,
        time_to_live=BLUETOOTH_TTL_S,
        tdf=ExponentialTDF(half_life=45.0),
    )


class BluetoothAdapter(LocationAdapter):
    """One inquiry-scanning Bluetooth station."""

    ADAPTER_TYPE = "Bluetooth"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 station_position: Point,
                 carry_probability: float = 0.9,
                 range_ft: float = BLUETOOTH_RANGE_FT,
                 frame: Optional[str] = None) -> None:
        super().__init__(adapter_id, glob_prefix,
                         bluetooth_spec(carry_probability), frame)
        self.station_position = station_position
        self.range_ft = range_ft

    def inquiry_result(self, device_ids: Iterable[str],
                       time: float) -> List[int]:
        """One inquiry scan's set of responding devices."""
        emitted: List[int] = []
        for device_id in device_ids:
            reading_id = self._emit_circle(device_id, self.station_position,
                                           self.range_ft, time)
            if reading_id is not None:
                emitted.append(reading_id)
        return emitted
