"""The location-adapter framework (paper Section 6).

"At the lowest layer of MiddleWhere we define an object called a
*location adapter* ... The adapter communicates natively to the
interface exposed by the location technology, and acts as a device
driver that allows the location sensor to work with MiddleWhere
seamlessly."

An adapter:

* owns an *adapter id* (unique instance) and an *adapter type* (the
  technology it wraps);
* is calibrated with the coordinate frame its native readings are
  expressed in;
* converts native readings into canonical-frame MBRs and inserts them
  into the spatial database (registering its sensor metadata row on
  attach).

New technologies plug in by subclassing :class:`LocationAdapter` and
registering with :class:`AdapterRegistry` — no change to applications,
which is the paper's headline middleware property.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from repro.core import SensorSpec
from repro.errors import CalibrationError, SensorError
from repro.geometry import Point, Rect
from repro.model import Glob
from repro.spatialdb import SpatialDatabase

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.intake import PipelineReading


class ReadingSink:
    """Anything adapters can emit into instead of the database.

    The canonical implementation is
    :class:`repro.pipeline.LocationPipeline`; tests use in-memory
    stubs.  Sinks compose: :class:`repro.faults.FaultySink` decorates
    any sink with seeded fault injection (drop/delay/duplicate/...),
    which is how the chaos suite exercises this boundary.  ``submit``
    returns False when the reading was refused (dead-lettered).
    """

    def submit(self, reading: "PipelineReading") -> bool:
        raise NotImplementedError


class LocationAdapter:
    """Base class for all location adapters.

    Args:
        adapter_id: unique instance name (e.g. ``"RF-12"``); doubles
            as the sensor id in the database.
        glob_prefix: where this sensor is installed (``"SC/3/3105"``).
        spec: the technology's error model and freshness behaviour.
        frame: the coordinate frame native readings are expressed in;
            defaults to ``glob_prefix`` (a sensor naturally reports in
            its own room's frame).
        sink: when set, canonical readings are submitted to this
            ingestion pipeline (any object with a
            ``submit(PipelineReading)`` method) instead of being
            written to the spatial database synchronously.
    """

    ADAPTER_TYPE = "generic"

    def __init__(self, adapter_id: str, glob_prefix: str, spec: SensorSpec,
                 frame: Optional[str] = None,
                 sink: Optional["ReadingSink"] = None) -> None:
        if not adapter_id:
            raise SensorError("adapter id must be non-empty")
        self.adapter_id = adapter_id
        self.glob_prefix = glob_prefix
        self.spec = spec
        self.frame = frame if frame is not None else glob_prefix
        self._db: Optional[SpatialDatabase] = None
        self._sink: Optional["ReadingSink"] = sink
        self._filter: Optional[Callable[[str, Rect, float], bool]] = None
        self._min_interval = 0.0
        self._last_emit: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def adapter_type(self) -> str:
        return self.ADAPTER_TYPE

    @property
    def database(self) -> SpatialDatabase:
        if self._db is None:
            raise SensorError(
                f"adapter {self.adapter_id!r} is not attached to a database")
        return self._db

    def attach(self, db: SpatialDatabase) -> "LocationAdapter":
        """Attach to the spatial database and register sensor metadata."""
        if self._db is not None:
            raise SensorError(f"adapter {self.adapter_id!r} already attached")
        if not db.world.frames.knows(self.frame):
            raise CalibrationError(
                f"adapter {self.adapter_id!r} calibrated against unknown "
                f"frame {self.frame!r}")
        db.register_sensor(
            sensor_id=self.adapter_id,
            sensor_type=self.adapter_type,
            confidence=self.spec.confidence_percent(),
            time_to_live=self.spec.time_to_live,
            spec=self.spec,
        )
        self._db = db
        return self

    def set_event_filter(self,
                         predicate: Callable[[str, Rect, float], bool]
                         ) -> None:
        """Filter readings before they reach the database.

        "Adapters can be programmed to filter certain events or send
        information to the MiddleWhere system at varying rates"
        (Section 2).  The predicate receives (object_id, canonical
        rect, time) and vetoes the reading by returning False.
        """
        self._filter = predicate

    def set_min_interval(self, seconds: float) -> None:
        """Rate-limit emissions per object (the "varying rates" knob)."""
        if seconds < 0.0:
            raise SensorError("minimum interval must be >= 0")
        self._min_interval = seconds

    def set_sink(self, sink: Optional["ReadingSink"]) -> None:
        """Route emissions into an ingestion pipeline (None = direct).

        With a sink the adapter stops writing the spatial database
        synchronously; readings travel the batched, back-pressured
        path instead and land in the database when their batch is
        flushed by a pipeline worker.
        """
        self._sink = sink

    @property
    def sink(self) -> Optional["ReadingSink"]:
        return self._sink

    # ------------------------------------------------------------------
    # Emission helpers for subclasses
    # ------------------------------------------------------------------

    def _canonical_point(self, native: Point) -> Point:
        """A native-frame point in the canonical (root) frame."""
        return self.database.world.frames.convert_point(
            native, self.frame, "")

    def _emit(self, object_id: str, rect: Rect, time: float,
              location: Optional[Point] = None,
              detection_radius: float = 0.0) -> Optional[int]:
        """Insert one canonical reading, honouring filter and rate limit.

        Returns the reading id, or ``None`` when suppressed.
        """
        if self._filter is not None and not self._filter(object_id, rect,
                                                         time):
            return None
        if self._min_interval > 0.0:
            last = self._last_emit.get(object_id)
            if last is not None and time - last < self._min_interval:
                return None
        self._last_emit[object_id] = time
        return self._deliver(self.adapter_id, self.adapter_type, object_id,
                             rect, time, location, detection_radius)

    def _deliver(self, sensor_id: str, sensor_type: str, object_id: str,
                 rect: Rect, time: float,
                 location: Optional[Point] = None,
                 detection_radius: float = 0.0) -> Optional[int]:
        """Route one canonical reading to the sink or the database.

        Adapters that register secondary sensor rows (e.g. the
        biometric adapter's long-term room reading) deliver through
        here too, so *every* reading honours the sink wiring — nothing
        sneaks into the database synchronously while a pipeline is in
        front of it.
        """
        if self._sink is not None:
            from repro.pipeline.intake import PipelineReading
            self._sink.submit(PipelineReading(
                sensor_id=sensor_id,
                glob_prefix=self.glob_prefix,
                sensor_type=sensor_type,
                object_id=object_id,
                rect=rect,
                detection_time=time,
                location=location,
                detection_radius=detection_radius,
            ))
            return None  # no reading id until the batch is flushed
        return self.database.insert_reading(
            sensor_id=sensor_id,
            glob_prefix=self.glob_prefix,
            sensor_type=sensor_type,
            mobile_object_id=object_id,
            rect=rect,
            detection_time=time,
            location=location,
            detection_radius=detection_radius,
        )

    def _emit_circle(self, object_id: str, center_native: Point,
                     radius: float, time: float) -> Optional[int]:
        """Emit a coordinate reading: native center + error radius."""
        if radius <= 0.0:
            raise SensorError(f"detection radius must be positive: {radius}")
        canonical = self._canonical_point(center_native)
        rect = Rect.from_center(canonical, radius)
        return self._emit(object_id, rect, time, location=canonical,
                          detection_radius=radius)

    def _emit_region(self, object_id: str, region_glob: str,
                     time: float) -> Optional[int]:
        """Emit a symbolic reading: the object is inside a named region."""
        rect = self.database.world.resolve_symbolic(Glob.parse(region_glob))
        return self._emit(object_id, rect, time)


class AdapterRegistry:
    """Plug-and-play adapter type registry.

    "Upon installing a new location technology ... the adapter
    translates the location readings into a GLOB that is fed into
    MiddleWhere through the provider interface."  Deployment tooling
    instantiates adapters by type name via :meth:`create`, so adding a
    technology is one ``register`` call.
    """

    def __init__(self) -> None:
        self._types: Dict[str, Type[LocationAdapter]] = {}

    def register(self, adapter_class: Type[LocationAdapter]) -> None:
        name = adapter_class.ADAPTER_TYPE
        if name in self._types:
            raise SensorError(f"adapter type {name!r} already registered")
        self._types[name] = adapter_class

    def create(self, adapter_type: str, *args: object,
               **kwargs: object) -> LocationAdapter:
        try:
            adapter_class = self._types[adapter_type]
        except KeyError:
            raise SensorError(
                f"unknown adapter type {adapter_type!r}") from None
        return adapter_class(*args, **kwargs)  # type: ignore[arg-type]

    def types(self) -> List[str]:
        return sorted(self._types)


def default_registry() -> AdapterRegistry:
    """A registry preloaded with every adapter shipped in this package."""
    from repro.sensors.biometric import BiometricAdapter
    from repro.sensors.bluetooth import BluetoothAdapter
    from repro.sensors.cardreader import CardReaderAdapter
    from repro.sensors.desktop import DesktopLoginAdapter
    from repro.sensors.gps import GpsAdapter
    from repro.sensors.rfbadge import RfBadgeAdapter
    from repro.sensors.ubisense import UbisenseAdapter

    registry = AdapterRegistry()
    for adapter_class in (UbisenseAdapter, RfBadgeAdapter, BiometricAdapter,
                          CardReaderAdapter, GpsAdapter, BluetoothAdapter,
                          DesktopLoginAdapter):
        registry.register(adapter_class)
    return registry
