"""RFID active-badge adapter (paper Section 6, item 2).

"The base stations can detect badges within a range of approx. 15 ft.
This system cannot give exact coordinates of the badge; instead, it is
capable of capturing the IDs of the badges in its vicinity. ... the
best set up for the RF badges is to define an area of interest, A, and
set up a base station in the center of A. ... we set y = 0.75, and
z = 0.25 * area(A)/area(U)."
"""

from __future__ import annotations

from typing import Optional

from repro.core import ExponentialTDF, SensorSpec
from repro.geometry import Point, Rect
from repro.sensors.base import LocationAdapter

RF_RANGE_FT = 15.0
RF_Y = 0.75
RF_Z0 = 0.25
RF_TTL_S = 60.0  # Table 2's RF time-to-live


def rf_badge_spec(carry_probability: float = 0.85,
                  ttl: float = RF_TTL_S) -> SensorSpec:
    """The calibrated RF badge spec.

    Badges are left on desks often; confidence halves every 30 s of
    staleness within the 60 s TTL window.
    """
    return SensorSpec(
        sensor_type=RfBadgeAdapter.ADAPTER_TYPE,
        carry_probability=carry_probability,
        detection_probability=RF_Y,
        misident_probability=RF_Z0,
        z_area_scaled=True,
        resolution=RF_RANGE_FT,
        time_to_live=ttl,
        tdf=ExponentialTDF(half_life=30.0),
    )


class RfBadgeAdapter(LocationAdapter):
    """One RF base station at a fixed position.

    Args:
        station_position: the base station's native-frame position —
            the center of its 15 ft area of interest.
        range_ft: detection range override (obstacles shrink it).
    """

    ADAPTER_TYPE = "RF"

    def __init__(self, adapter_id: str, glob_prefix: str,
                 station_position: Point,
                 carry_probability: float = 0.85,
                 range_ft: float = RF_RANGE_FT,
                 frame: Optional[str] = None) -> None:
        super().__init__(adapter_id, glob_prefix,
                         rf_badge_spec(carry_probability), frame)
        self.station_position = station_position
        self.range_ft = range_ft

    def area_of_interest(self) -> Rect:
        """The canonical-frame MBR of the station's coverage circle."""
        canonical = self._canonical_point(self.station_position)
        return Rect.from_center(canonical, self.range_ft)

    def badge_sighting(self, badge_id: str, time: float) -> Optional[int]:
        """The station heard badge ``badge_id``.

        No coordinates — the reading is the whole area of interest
        centered at the station.
        """
        return self._emit_circle(badge_id, self.station_position,
                                 self.range_ft, time)
