"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    — run a scenario and print live floor maps + estimates.
* ``floor``   — render a floor plan (paper | siebel | generated).
* ``locate``  — run a scenario silently, then answer locator-style
  questions from the command line.
* ``blueprint`` — export a built-in floor as a blueprint JSON.
* ``calibrate`` — run the simulated user study and print the report.
* ``pipeline`` — run a scenario through the async ingestion pipeline
  and print its throughput/latency statistics.
* ``semantic`` — run a scenario with semantic rule subscriptions and
  print every enter/leave event the trigger engine derives.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import VocalPersonnelLocator
from repro.model.serialize import world_to_json
from repro.pipeline import (
    OVERFLOW_BLOCK,
    OVERFLOW_POLICIES,
    PipelineConfig,
)
from repro.reasoning.incremental import MODE_INCREMENTAL, MODE_REFERENCE
from repro.sim import (
    Scenario,
    campus_world,
    generate_office_floor,
    paper_floor,
    siebel_building,
    siebel_floor,
)
from repro.sim.render import FloorRenderer, render_scenario
from repro.sim.study import SensorStudy

_WORLDS = {
    "paper": paper_floor,
    "siebel": siebel_floor,
    "building": siebel_building,
    "campus": campus_world,
    "generated": lambda: generate_office_floor(6),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MiddleWhere reproduction command-line tools")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a live scenario")
    demo.add_argument("--people", type=int, default=4)
    demo.add_argument("--seconds", type=float, default=300.0)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--snapshots", type=int, default=3,
                      help="floor maps printed during the run")
    demo.add_argument("--width", type=int, default=96)

    floor = sub.add_parser("floor", help="render a floor plan")
    floor.add_argument("world", choices=sorted(_WORLDS), nargs="?",
                       default="siebel")
    floor.add_argument("--width", type=int, default=96)

    locate = sub.add_parser("locate",
                            help="ask locator questions after a run")
    locate.add_argument("questions", nargs="+",
                        help="e.g. 'where is person-1'")
    locate.add_argument("--people", type=int, default=4)
    locate.add_argument("--seconds", type=float, default=300.0)
    locate.add_argument("--seed", type=int, default=7)

    blueprint = sub.add_parser("blueprint",
                               help="export a floor as blueprint JSON")
    blueprint.add_argument("world", choices=sorted(_WORLDS), nargs="?",
                           default="paper")

    calibrate = sub.add_parser(
        "calibrate", help="run the simulated RF calibration study")
    calibrate.add_argument("--seconds", type=float, default=1800.0)
    calibrate.add_argument("--people", type=int, default=8)
    calibrate.add_argument("--seed", type=int, default=4)

    pipeline = sub.add_parser(
        "pipeline",
        help="run a scenario through the streaming ingestion pipeline")
    pipeline.add_argument("--people", type=int, default=6)
    pipeline.add_argument("--seconds", type=float, default=300.0)
    pipeline.add_argument("--seed", type=int, default=7)
    pipeline.add_argument("--workers", type=int, default=2)
    pipeline.add_argument("--policy", choices=OVERFLOW_POLICIES,
                          default=OVERFLOW_BLOCK)
    pipeline.add_argument("--batch", type=int, default=16,
                          help="max readings coalesced per fusion pass")
    pipeline.add_argument("--max-wait", type=float, default=0.05,
                          help="seconds a partial batch may wait")
    pipeline.add_argument("--wal-dir", default=None,
                          help="make the run durable: journal every "
                               "mutation into this directory")
    pipeline.add_argument("--durability",
                          choices=["buffered", "strict"],
                          default="buffered",
                          help="fsync policy when --wal-dir is set")
    pipeline.add_argument("--snapshot-interval", type=int, default=None,
                          help="cut a snapshot every N journaled records")
    pipeline.add_argument("--shards", type=int, default=0,
                          help="partition the world across N shard "
                               "processes fronted by a router (0 = "
                               "single-process pipeline); with "
                               "--wal-dir each shard journals its own "
                               "write-ahead log")

    recover = sub.add_parser(
        "recover",
        help="rebuild a spatial database from a WAL directory")
    recover.add_argument("wal_dir",
                         help="directory written by a --wal-dir run")

    semantic = sub.add_parser(
        "semantic",
        help="run a scenario with semantic rule subscriptions")
    semantic.add_argument(
        "rules", nargs="*",
        help="Horn rules over derived facts, e.g. \"meeting(P, Q) :- "
             "colocated_at(P, Q, 'SC/3/3104'), distinct(P, Q)\"; "
             "defaults to an occupancy + meeting pair")
    semantic.add_argument("--people", type=int, default=4)
    semantic.add_argument("--seconds", type=float, default=120.0)
    semantic.add_argument("--seed", type=int, default=7)
    semantic.add_argument("--mode",
                          choices=[MODE_INCREMENTAL, MODE_REFERENCE],
                          default=MODE_INCREMENTAL,
                          help="incremental engine or the naive "
                               "full-re-evaluation oracle")
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    scenario = Scenario(seed=args.seed).standard_deployment()
    scenario.add_people(args.people)
    chunk = args.seconds / max(1, args.snapshots)
    for snapshot in range(args.snapshots):
        scenario.run(chunk, dt=1.0)
        print(f"\n=== t = {scenario.now:.0f} s ===")
        print(render_scenario(scenario, width=args.width))
    return 0


def _cmd_floor(args: argparse.Namespace) -> int:
    world = _WORLDS[args.world]()
    print(FloorRenderer(world, width=args.width).render())
    return 0


def _cmd_locate(args: argparse.Namespace) -> int:
    scenario = Scenario(seed=args.seed).standard_deployment()
    scenario.add_people(args.people)
    scenario.run(args.seconds, dt=1.0)
    locator = VocalPersonnelLocator(scenario.service)
    for question in args.questions:
        print(f"Q: {question}")
        print(f"A: {locator.ask(question)}")
    return 0


def _cmd_blueprint(args: argparse.Namespace) -> int:
    print(world_to_json(_WORLDS[args.world]()))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    scenario = Scenario(seed=args.seed)
    station = scenario.deployment.install_rf_station(
        "RF-study", "SC/3/Corridor", misident_rate=0.002)
    scenario.add_people(args.people)
    study = SensorStudy(scenario, station)
    study.run(args.seconds, dt=1.0)
    print(study.report().summary())
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    if args.shards > 0:
        return _run_sharded(args)
    scenario = Scenario(seed=args.seed)
    if args.wal_dir is not None:
        # Attach durability before sensors register so the deployment's
        # registrations are journaled too.
        scenario.use_durability(args.wal_dir, mode=args.durability,
                                snapshot_interval=args.snapshot_interval)
    scenario.standard_deployment()
    scenario.add_people(args.people)
    config = PipelineConfig(
        overflow_policy=args.policy,
        max_batch=args.batch,
        max_wait=args.max_wait,
        workers=args.workers,
    )
    pipeline = scenario.use_pipeline(config=config)
    try:
        scenario.run(args.seconds, dt=1.0)
        pipeline.drain()
    finally:
        pipeline.stop()
    stats = pipeline.stats()
    print(stats.summary())
    if scenario.durability is not None:
        pairs = " ".join(f"{key}={value}" for key, value
                         in sorted(scenario.durability.stats().items()))
        print(f"durability: {pairs}")
        scenario.durability.close()
    if not stats.reconciles():
        print("WARNING: pipeline accounting does not reconcile",
              file=sys.stderr)
        return 1
    return 0


def _run_sharded(args: argparse.Namespace) -> int:
    """The ``pipeline --shards N`` path: a real multiprocess fleet."""
    scenario = Scenario(seed=args.seed).standard_deployment()
    scenario.add_people(args.people)
    router = scenario.use_shards(
        args.shards, wal_root=args.wal_dir,
        durability_mode=args.durability,
        pipeline={
            "workers": args.workers,
            "max_batch": args.batch,
            "max_wait": args.max_wait,
            "overflow_policy": args.policy,
        })
    try:
        scenario.run(args.seconds, dt=1.0)
        router.drain()
        stats = router.stats()
        fleet = stats["fleet"]
        route = stats["router"]
        print(f"shards={route['shards']} submitted={route['submitted']} "
              f"forwarded={route['forwarded']} "
              f"dead_lettered={route['router_dead_lettered']}")
        print(f"wire: codec={route['codec']} "
              f"multiplexed_inflight_max="
              f"{route['multiplexed_inflight_max']}")
        print(f"fleet: enqueued={fleet['enqueued']} "
              f"fused={fleet['fused']} dropped={fleet['dropped']} "
              f"dead_lettered={fleet['dead_lettered']} "
              f"cache_hits={fleet['fusion_cache_hits']} "
              f"readings={fleet['readings']}")
        senders = {s["shard"]: s for s in route["senders"]}
        for shard in stats["shards"]:
            if shard is None:
                continue
            sender = senders.get(shard["shard"], {})
            print(f"  shard {shard['shard']}: pid={shard['pid']} "
                  f"readings={shard['readings']} "
                  f"fused={shard['pipeline']['fused']} "
                  f"tracked={shard['tracked']} "
                  f"queue_depth={sender.get('queue_depth', 0)} "
                  f"flush_latency="
                  f"{sender.get('flush_latency', 0.0) * 1e3:.2f}ms")
        if not router.reconciles():
            print("WARNING: fleet accounting does not reconcile",
                  file=sys.stderr)
            return 1
        errors = router.check_invariants()
        if errors:
            for error in errors:
                print(f"WARNING: {error}", file=sys.stderr)
            return 1
        return 0
    finally:
        scenario.shard_cluster.shutdown()


_DEFAULT_SEMANTIC_RULES = (
    "occupied(P) :- located_within(P, 'SC/3/3105')",
    "meeting(P, Q) :- colocated_at(P, Q, 'SC/3/3105'), distinct(P, Q)",
)


def _cmd_semantic(args: argparse.Namespace) -> int:
    scenario = Scenario(seed=args.seed).standard_deployment()
    scenario.add_people(args.people)
    rules = args.rules or list(_DEFAULT_SEMANTIC_RULES)

    def consumer(event):
        bindings = " ".join(f"{var}={value}" for var, value
                            in sorted(event["bindings"].items()))
        print(f"t={event['time']:8.1f}  {event['transition']:5s}  "
              f"{event['head']}  {bindings}")

    for rule in rules:
        print(f"rule: {rule}")
        scenario.service.subscribe_semantic(rule, consumer=consumer,
                                            mode=args.mode)
    scenario.run(args.seconds, dt=1.0)
    stats = scenario.service.semantic_manager(args.mode).stats()
    pairs = " ".join(f"{key}={value}" for key, value
                     in sorted(stats.items()))
    print(f"semantic: {pairs}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.storage import readings_fingerprint, recover

    state = recover(args.wal_dir)
    db = state.db
    print(f"snapshot seq:   {state.snapshot_seq}")
    print(f"replayed:       {state.replayed} WAL records "
          f"(through seq {state.last_seq})")
    if state.torn_bytes:
        print(f"torn tail:      {state.torn_bytes} bytes discarded "
              f"(kill mid-append)")
    print(f"sensors:        {len(db.sensor_specs)}")
    print(f"readings:       {len(db.sensor_readings)}")
    print(f"tracked:        {', '.join(db.tracked_objects()) or '-'}")
    print(f"subscriptions:  {len(state.subscriptions())}")
    print(f"triggers:       {len(state.triggers())}")
    print(f"fingerprint:    {readings_fingerprint(db)}")
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "floor": _cmd_floor,
    "locate": _cmd_locate,
    "blueprint": _cmd_blueprint,
    "calibrate": _cmd_calibrate,
    "pipeline": _cmd_pipeline,
    "recover": _cmd_recover,
    "semantic": _cmd_semantic,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
