"""Typed in-memory tables with insert/update/delete triggers.

The paper keeps its world model and sensor readings in PostgreSQL
tables and relies on *database triggers* for location notifications
(Section 5.3).  This module supplies the table abstraction: a schema
of typed columns, rows stored as dicts, simple predicate queries, and
row-level triggers fired on mutation — exactly the machinery the
trigger-response benchmark (Figure 9) exercises.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError, SchemaError
from repro.geometry import Rect
from repro.spatialdb.rtree import RTree

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]
TriggerAction = Callable[[Row], None]


@dataclass(frozen=True)
class Column:
    """One column of a table schema.

    ``kind`` is a Python type used for validation; ``nullable`` allows
    ``None``.  Geometry columns use ``object`` since they hold any of
    the geometry classes.
    """

    name: str
    kind: type
    nullable: bool = False

    def validate(self, value: Any) -> None:
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if self.kind is float and isinstance(value, int):
            return  # ints are acceptable floats
        if not isinstance(value, self.kind):
            raise SchemaError(
                f"column {self.name!r} expects {self.kind.__name__}, "
                f"got {type(value).__name__}"
            )


class Schema:
    """An ordered set of columns with an optional primary key."""

    def __init__(self, columns: Sequence[Column],
                 primary_key: Optional[Sequence[str]] = None) -> None:
        self.columns = list(columns)
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError("duplicate column names")
        self.primary_key = tuple(primary_key or ())
        for key in self.primary_key:
            if key not in self._by_name:
                raise SchemaError(f"primary key column {key!r} not in schema")

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def validate_row(self, row: Row) -> None:
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns: {sorted(unknown)}")
        for column in self.columns:
            column.validate(row.get(column.name))

    def key_of(self, row: Row) -> Tuple[Any, ...]:
        return tuple(row[k] for k in self.primary_key)


@dataclass
class Trigger:
    """A row-level trigger: fire ``action`` when ``event`` happens and
    ``condition`` holds on the affected row.

    ``region`` is an optional dispatch hint for insert triggers on a
    table with spatial dispatch enabled (see
    :meth:`Table.enable_spatial_triggers`): when set, the trigger is
    only *probed* for rows whose rect column intersects ``region``.
    ``condition`` stays authoritative — the hint must therefore be
    conservative (any row the condition could accept intersects
    ``region``); a trigger whose hinted region is disjoint from the
    row's rect would have had its condition return ``False`` anyway.
    """

    trigger_id: str
    event: str  # 'insert' | 'update' | 'delete'
    condition: Predicate
    action: TriggerAction
    enabled: bool = True
    region: Optional[Rect] = None

    _VALID_EVENTS = ("insert", "update", "delete")

    def __post_init__(self) -> None:
        if self.event not in self._VALID_EVENTS:
            raise QueryError(f"invalid trigger event {self.event!r}")



def _synchronized(method):
    """Run a Table method under the table's re-entrant lock."""
    import functools

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)
    return wrapper


class Table:
    """An in-memory table with schema validation and triggers.

    Rows are stored as plain dicts.  An internal monotonically
    increasing rowid orders rows by insertion, giving deterministic
    query results.

    Thread safety: all operations take the table's re-entrant lock, so
    remote queries served on ORB transport threads can run concurrently
    with adapter ingest.  Triggers fire while the lock is held (they
    may re-enter the table from the same thread), matching database
    row-trigger semantics.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._rowid = itertools.count(1)
        self._pk_index: Dict[Tuple[Any, ...], int] = {}
        self._triggers: Dict[str, Trigger] = {}
        # Secondary hash indexes: column -> value -> set of rowids.
        self._indexes: Dict[str, Dict[Any, set]] = {}
        self._lock = threading.RLock()
        # Bumped on every mutation; caches key derived state on it.
        self.version = 0
        # Spatial trigger dispatch (enable_spatial_triggers): inserts
        # probe an R-tree of trigger regions instead of evaluating
        # every trigger's condition.  Firing order is preserved via a
        # per-trigger registration sequence number.
        self._spatial_column: Optional[str] = None
        self._trigger_rtree: Optional[RTree] = None
        self._spatial_trigger_ids: set = set()
        self._plain_insert_triggers: Dict[str, Trigger] = {}
        self._trigger_seq: Dict[str, int] = {}
        self._trigger_counter = itertools.count(1)
        self.use_spatial_dispatch = True
        self.trigger_probes = 0
        self.trigger_candidates = 0
        self.trigger_skipped = 0

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    @_synchronized
    def insert(self, row: Row, fire_triggers: bool = True) -> int:
        """Insert a row; returns its rowid.  Fires insert triggers.

        ``fire_triggers=False`` suppresses them for writers that run
        their own evaluation pass afterwards (the ingestion pipeline
        evaluates subscriptions once per fused batch, not per insert).
        """
        self.schema.validate_row(row)
        stored = dict(row)
        if self.schema.primary_key:
            key = self.schema.key_of(stored)
            if key in self._pk_index:
                raise SchemaError(
                    f"duplicate primary key {key!r} in table {self.name!r}")
        rowid = next(self._rowid)
        self._rows[rowid] = stored
        if self.schema.primary_key:
            self._pk_index[self.schema.key_of(stored)] = rowid
        for column, index in self._indexes.items():
            index.setdefault(stored.get(column), set()).add(rowid)
        self.version += 1
        if fire_triggers:
            self._fire("insert", stored)
        return rowid

    @_synchronized
    def update(self, where: Predicate, changes: Row) -> int:
        """Update matching rows; returns the count.  Fires update triggers."""
        count = 0
        for rowid, row in list(self._rows.items()):
            if not where(row):
                continue
            updated = dict(row)
            updated.update(changes)
            self.schema.validate_row(updated)
            if self.schema.primary_key:
                old_key = self.schema.key_of(row)
                new_key = self.schema.key_of(updated)
                if new_key != old_key:
                    if new_key in self._pk_index:
                        raise SchemaError(
                            f"update collides on primary key {new_key!r}")
                    del self._pk_index[old_key]
                    self._pk_index[new_key] = rowid
            for column, index in self._indexes.items():
                old_value = row.get(column)
                new_value = updated.get(column)
                if old_value != new_value:
                    index.get(old_value, set()).discard(rowid)
                    index.setdefault(new_value, set()).add(rowid)
            self._rows[rowid] = updated
            count += 1
            self.version += 1
            self._fire("update", updated)
        return count

    @_synchronized
    def delete(self, where: Predicate) -> int:
        """Delete matching rows; returns the count.  Fires delete triggers."""
        doomed = [(rowid, row) for rowid, row in self._rows.items()
                  if where(row)]
        for rowid, row in doomed:
            del self._rows[rowid]
            if self.schema.primary_key:
                self._pk_index.pop(self.schema.key_of(row), None)
            for column, index in self._indexes.items():
                index.get(row.get(column), set()).discard(rowid)
        if doomed:
            self.version += len(doomed)
        for _, row in doomed:
            self._fire("delete", row)
        return len(doomed)

    @_synchronized
    def clear(self) -> None:
        """Remove all rows without firing triggers."""
        self._rows.clear()
        self._pk_index.clear()
        for index in self._indexes.values():
            index.clear()
        self.version += 1

    # ------------------------------------------------------------------
    # Secondary indexes
    # ------------------------------------------------------------------

    @_synchronized
    def create_index(self, column: str) -> None:
        """Create (and backfill) a hash index on an equality column.

        ``select_eq`` on an indexed column becomes O(matching rows)
        instead of a full scan — the sensor-readings table indexes
        ``mobile_object_id`` so per-object fusion does not scan
        everyone's readings.
        """
        if column not in self.schema.column_names:
            raise QueryError(f"unknown column {column!r}")
        if column in self._indexes:
            return  # idempotent
        index: Dict[Any, set] = {}
        for rowid, row in self._rows.items():
            index.setdefault(row.get(column), set()).add(rowid)
        self._indexes[column] = index

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    @_synchronized
    def index_keys(self, column: str) -> List[Any]:
        """Distinct values of an indexed column over the live rows.

        O(distinct values) — the index's empty buckets (values whose
        rows were all deleted) are skipped, so the result is exactly
        ``sorted({row[column] for row in select()})``.
        """
        index = self._indexes.get(column)
        if index is None:
            raise QueryError(f"column {column!r} is not indexed")
        return sorted(value for value, rowids in index.items() if rowids)

    @_synchronized
    def select_eq(self, column: str, value: Any,
                  where: Optional[Predicate] = None) -> List[Row]:
        """Rows with ``row[column] == value`` (index-accelerated)."""
        index = self._indexes.get(column)
        if index is None:
            return self.select(
                lambda row: row.get(column) == value
                and (where is None or where(row)))
        rowids = sorted(index.get(value, ()))
        out = []
        for rowid in rowids:
            row = self._rows.get(rowid)
            if row is None:
                continue
            if where is None or where(row):
                out.append(dict(row))
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @_synchronized
    def select(self, where: Optional[Predicate] = None,
               order_by: Optional[str] = None,
               limit: Optional[int] = None) -> List[Row]:
        """Rows matching ``where``, copied so callers cannot mutate state."""
        rows = [dict(row) for _, row in sorted(self._rows.items())
                if where is None or where(row)]
        if order_by is not None:
            if order_by not in self.schema.column_names:
                raise QueryError(f"unknown order_by column {order_by!r}")
            rows.sort(key=lambda r: r[order_by])
        if limit is not None:
            rows = rows[:limit]
        return rows

    @_synchronized
    def select_one(self, where: Predicate) -> Optional[Row]:
        """The first matching row, or ``None``."""
        for _, row in sorted(self._rows.items()):
            if where(row):
                return dict(row)
        return None

    @_synchronized
    def get(self, *key: Any) -> Optional[Row]:
        """Primary-key lookup."""
        if not self.schema.primary_key:
            raise QueryError(f"table {self.name!r} has no primary key")
        rowid = self._pk_index.get(tuple(key))
        return dict(self._rows[rowid]) if rowid is not None else None

    @_synchronized
    def count(self, where: Optional[Predicate] = None) -> int:
        if where is None:
            return len(self._rows)
        return sum(1 for row in self._rows.values() if where(row))

    @staticmethod
    def equals(**criteria: Any) -> Predicate:
        """A predicate matching rows whose columns equal the criteria.

        >>> where = Table.equals(sensor_type="RF")
        """
        def predicate(row: Row) -> bool:
            return all(row.get(k) == v for k, v in criteria.items())
        return predicate

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------

    @_synchronized
    def enable_spatial_triggers(self, column: str) -> None:
        """Dispatch insert triggers through an R-tree of their regions.

        ``column`` names the :class:`Rect` column probed against each
        trigger's ``region`` hint.  An insert then evaluates only the
        triggers whose region intersects the new row's rectangle (plus
        every region-less trigger), instead of all of them — the
        coarse-filter-then-refine pattern applied to trigger dispatch.
        Idempotent; re-enabling with the same column is a no-op.
        """
        if column not in self.schema.column_names:
            raise QueryError(f"unknown column {column!r}")
        if self._spatial_column == column:
            return
        self._spatial_column = column
        self._rebuild_trigger_index()

    def _rebuild_trigger_index(self) -> None:
        self._trigger_rtree = RTree()
        self._spatial_trigger_ids.clear()
        self._plain_insert_triggers.clear()
        for trigger in self._triggers.values():
            self._classify_trigger(trigger)

    def _classify_trigger(self, trigger: Trigger) -> None:
        if trigger.event != "insert":
            return
        if (self._spatial_column is not None
                and self._trigger_rtree is not None
                and trigger.region is not None):
            self._trigger_rtree.insert(trigger.region, trigger.trigger_id)
            self._spatial_trigger_ids.add(trigger.trigger_id)
        else:
            self._plain_insert_triggers[trigger.trigger_id] = trigger

    @_synchronized
    def create_trigger(self, trigger: Trigger) -> None:
        if trigger.trigger_id in self._triggers:
            raise QueryError(f"duplicate trigger {trigger.trigger_id!r}")
        self._triggers[trigger.trigger_id] = trigger
        self._trigger_seq[trigger.trigger_id] = next(self._trigger_counter)
        self._classify_trigger(trigger)

    @_synchronized
    def drop_trigger(self, trigger_id: str) -> bool:
        trigger = self._triggers.pop(trigger_id, None)
        if trigger is None:
            return False
        self._trigger_seq.pop(trigger_id, None)
        self._plain_insert_triggers.pop(trigger_id, None)
        if trigger_id in self._spatial_trigger_ids:
            self._spatial_trigger_ids.discard(trigger_id)
            assert self._trigger_rtree is not None
            assert trigger.region is not None
            self._trigger_rtree.delete(
                trigger.region, lambda value: value == trigger_id)
        return True

    def trigger_count(self) -> int:
        return len(self._triggers)

    def triggers(self) -> List[Trigger]:
        return list(self._triggers.values())

    def trigger_dispatch_stats(self) -> Dict[str, int]:
        """Indexed-dispatch effectiveness counters."""
        with self._lock:
            return {
                "probes": self.trigger_probes,
                "candidates": self.trigger_candidates,
                "skipped": self.trigger_skipped,
                "spatial_triggers": len(self._spatial_trigger_ids),
            }

    def _fire(self, event: str, row: Row) -> None:
        if (event == "insert" and self.use_spatial_dispatch
                and self._spatial_trigger_ids
                and self._spatial_column is not None):
            rect = row.get(self._spatial_column)
            if isinstance(rect, Rect):
                self._fire_indexed(row, rect)
                return
        self._fire_reference(event, row)

    def _fire_indexed(self, row: Row, rect: Rect) -> None:
        """Insert-trigger dispatch through the region R-tree.

        Produces exactly the firings of :meth:`_fire_reference`: the
        R-tree returns every spatial trigger whose region intersects
        the row's rect (a pruned trigger's condition is False by the
        conservative-hint contract), conditions are still evaluated,
        and candidates fire in registration order.
        """
        assert self._trigger_rtree is not None
        candidates = list(self._plain_insert_triggers.values())
        hits = self._trigger_rtree.search(rect)
        for trigger_id in hits:
            trigger = self._triggers.get(trigger_id)
            if trigger is not None:
                candidates.append(trigger)
        candidates.sort(key=lambda t: self._trigger_seq[t.trigger_id])
        self.trigger_probes += 1
        self.trigger_candidates += len(candidates)
        self.trigger_skipped += len(self._spatial_trigger_ids) - len(hits)
        for trigger in candidates:
            if trigger.enabled and trigger.condition(row):
                trigger.action(dict(row))

    def _fire_reference(self, event: str, row: Row) -> None:
        """The linear scan over every trigger (pre-index behavior);
        kept as the equivalence baseline for the indexed dispatch."""
        for trigger in list(self._triggers.values()):
            if trigger.enabled and trigger.event == event:
                if trigger.condition(row):
                    trigger.action(dict(row))
