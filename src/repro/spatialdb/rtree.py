"""A from-scratch Guttman R-tree (quadratic split).

The paper stores its spatial model in PostGIS; the index structure
behind spatial predicates there is the R-tree of Guttman [4], which
the paper cites directly.  We implement it ourselves so region queries
and trigger matching scale the way the paper's evaluation assumes.

The tree maps rectangles to opaque values.  Entries with equal
rectangles are allowed; deletion removes a specific (rect, value)
pair.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple, TypeVar

from repro.geometry import Point, Rect

T = TypeVar("T")


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # Leaf entries: (rect, value).  Internal entries: (rect, child node).
        self.entries: List[Tuple[Rect, object]] = []
        self.parent: Optional[_Node] = None

    def mbr(self) -> Rect:
        result = self.entries[0][0]
        for rect, _ in self.entries[1:]:
            result = result.union_mbr(rect)
        return result


class RTree:
    """An R-tree over (rect, value) pairs.

    Args:
        max_entries: node fan-out M; nodes split above this.
        min_entries: minimum fill m (defaults to M // 2).
    """

    def __init__(self, max_entries: int = 8,
                 min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self._max = max_entries
        self._min = min_entries if min_entries is not None else max_entries // 2
        if self._min < 1 or self._min > self._max // 2:
            raise ValueError("min_entries must be in [1, max_entries // 2]")
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @classmethod
    def from_entries(cls, entries, max_entries: int = 8,
                     min_entries: Optional[int] = None) -> "RTree":
        """Build a tree from an iterable of (rect, value) pairs.

        The one-call form index rebuilds use (region lattice relink,
        subscription-manager and trigger-index reconstruction).
        """
        tree = cls(max_entries, min_entries)
        for rect, value in entries:
            tree.insert(rect, value)
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, value: T) -> None:
        """Insert a rectangle/value pair."""
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((rect, value))
        self._size += 1
        if len(leaf.entries) > self._max:
            self._split_and_propagate(leaf)
        else:
            # AdjustTree: grow ancestor MBRs to cover the new entry.
            self._adjust_upward(leaf)

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.leaf:
            best_child: Optional[_Node] = None
            best_growth = float("inf")
            best_area = float("inf")
            for child_rect, child in node.entries:
                grown = child_rect.union_mbr(rect)
                growth = grown.area - child_rect.area
                if growth < best_growth or (
                    growth == best_growth and child_rect.area < best_area
                ):
                    best_growth = growth
                    best_area = child_rect.area
                    best_child = child  # type: ignore[assignment]
            assert best_child is not None
            node = best_child
        return node

    def _split_and_propagate(self, node: _Node) -> None:
        while len(node.entries) > self._max:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                new_root.entries = [(node.mbr(), node),
                                    (sibling.mbr(), sibling)]
                node.parent = new_root
                sibling.parent = new_root
                self._root = new_root
                return
            sibling.parent = parent
            self._refresh_child(parent, node)
            parent.entries.append((sibling.mbr(), sibling))
            node = parent
        self._adjust_upward(node)

    def _quadratic_split(self, node: _Node) -> _Node:
        """Guttman's quadratic split: seed with the worst pair."""
        entries = node.entries
        worst = -1.0
        seed_a = 0
        seed_b = 1
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i][0].union_mbr(entries[j][0])
                waste = combined.area - entries[i][0].area - entries[j][0].area
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a][0]
        rect_b = entries[seed_b][0]
        remaining = [e for k, e in enumerate(entries)
                     if k not in (seed_a, seed_b)]
        while remaining:
            # Force assignment when a group must absorb all the rest.
            if len(group_a) + len(remaining) <= self._min:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self._min:
                group_b.extend(remaining)
                remaining = []
                break
            # Pick the entry with the greatest preference for one group.
            best_idx = 0
            best_diff = -1.0
            for idx, (rect, _) in enumerate(remaining):
                d_a = rect_a.union_mbr(rect).area - rect_a.area
                d_b = rect_b.union_mbr(rect).area - rect_b.area
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = idx
            entry = remaining.pop(best_idx)
            d_a = rect_a.union_mbr(entry[0]).area - rect_a.area
            d_b = rect_b.union_mbr(entry[0]).area - rect_b.area
            if d_a < d_b or (d_a == d_b and rect_a.area <= rect_b.area):
                group_a.append(entry)
                rect_a = rect_a.union_mbr(entry[0])
            else:
                group_b.append(entry)
                rect_b = rect_b.union_mbr(entry[0])
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not sibling.leaf:
            for _, child in sibling.entries:
                child.parent = sibling  # type: ignore[union-attr]
        return sibling

    def _refresh_child(self, parent: _Node, child: _Node) -> None:
        for idx, (_, node) in enumerate(parent.entries):
            if node is child:
                parent.entries[idx] = (child.mbr(), child)
                return
        raise AssertionError("child not found in parent")

    def _adjust_upward(self, node: _Node) -> None:
        while node.parent is not None:
            self._refresh_child(node.parent, node)
            node = node.parent

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search(self, rect: Rect) -> List[T]:
        """All values whose rectangle intersects ``rect``."""
        return [value for _, value in self.search_entries(rect)]

    def search_entries(self, rect: Rect) -> List[Tuple[Rect, T]]:
        """All (rect, value) entries intersecting ``rect``."""
        out: List[Tuple[Rect, T]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_rect, payload in node.entries:
                if not entry_rect.intersects(rect):
                    continue
                if node.leaf:
                    out.append((entry_rect, payload))  # type: ignore[arg-type]
                else:
                    stack.append(payload)  # type: ignore[arg-type]
        return out

    def search_contained_in(self, rect: Rect) -> List[Tuple[Rect, T]]:
        """Entries whose rectangle lies fully inside ``rect``."""
        return [(r, v) for r, v in self.search_entries(rect)
                if rect.contains_rect(r)]

    def search_point(self, p: Point) -> List[T]:
        """All values whose rectangle contains the point."""
        probe = Rect(p.x, p.y, p.x, p.y)
        return self.search(probe)

    def nearest(self, p: Point, count: int = 1) -> List[Tuple[Rect, T]]:
        """The ``count`` entries nearest to ``p`` (branch-and-bound)."""
        import heapq

        if count < 1:
            return []
        # Heap of (distance, tiebreak, is_leaf_entry, payload).
        counter = 0
        heap: List[Tuple[float, int, bool, object, Optional[Rect]]] = []
        heapq.heappush(heap, (0.0, counter, False, self._root, None))
        results: List[Tuple[Rect, T]] = []
        while heap and len(results) < count:
            dist, _, is_entry, payload, rect = heapq.heappop(heap)
            if is_entry:
                assert rect is not None
                results.append((rect, payload))  # type: ignore[arg-type]
                continue
            node = payload
            assert isinstance(node, _Node)
            for entry_rect, child in node.entries:
                counter += 1
                d = entry_rect.distance_to_point(p)
                if node.leaf:
                    heapq.heappush(heap, (d, counter, True, child, entry_rect))
                else:
                    heapq.heappush(heap, (d, counter, False, child, None))
        return results

    def items(self) -> Iterator[Tuple[Rect, T]]:
        """Iterate over every (rect, value) pair."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for rect, payload in node.entries:
                if node.leaf:
                    yield rect, payload  # type: ignore[misc]
                else:
                    stack.append(payload)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, rect: Rect, match: Callable[[T], bool]) -> bool:
        """Delete the first leaf entry with this exact rect whose value
        satisfies ``match``.  Returns whether an entry was removed.

        Underfull nodes are handled by re-inserting their remaining
        entries (Guttman's CondenseTree).
        """
        found = self._find_leaf(self._root, rect, match)
        if found is None:
            return False
        leaf, index = found
        leaf.entries.pop(index)
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(self, node: _Node, rect: Rect,
                   match: Callable[[T], bool]) -> Optional[Tuple[_Node, int]]:
        if node.leaf:
            for idx, (entry_rect, value) in enumerate(node.entries):
                if entry_rect == rect and match(value):  # type: ignore[arg-type]
                    return node, idx
            return None
        for entry_rect, child in node.entries:
            if entry_rect.intersects(rect):
                found = self._find_leaf(child, rect, match)  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: List[Tuple[Rect, object]] = []
        orphan_leaf_flags: List[bool] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self._min:
                for idx, (_, child) in enumerate(parent.entries):
                    if child is node:
                        parent.entries.pop(idx)
                        break
                orphans.extend(node.entries)
                orphan_leaf_flags.extend([node.leaf] * len(node.entries))
            else:
                self._refresh_child(parent, node)
            node = parent
        # Shrink the root if it has a single internal child.
        while not self._root.leaf and len(self._root.entries) == 1:
            only = self._root.entries[0][1]
            assert isinstance(only, _Node)
            only.parent = None
            self._root = only
        if not self._root.leaf and not self._root.entries:
            self._root = _Node(leaf=True)
        # Re-insert orphaned entries.
        for (rect, payload), was_leaf in zip(orphans, orphan_leaf_flags):
            if was_leaf:
                self._size -= 1  # insert() will re-count it
                self.insert(rect, payload)  # type: ignore[arg-type]
            else:
                assert isinstance(payload, _Node)
                self._reinsert_subtree(payload)

    def _reinsert_subtree(self, node: _Node) -> None:
        for rect, payload in node.entries:
            if node.leaf:
                self._size -= 1
                self.insert(rect, payload)  # type: ignore[arg-type]
            else:
                assert isinstance(payload, _Node)
                self._reinsert_subtree(payload)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def height(self) -> int:
        """Tree height (1 for a lone leaf root)."""
        h = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0][1]  # type: ignore[assignment]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        def walk(node: _Node, depth: int, leaf_depths: List[int]) -> None:
            if node is not self._root:
                assert len(node.entries) >= self._min, "underfull node"
            assert len(node.entries) <= self._max, "overfull node"
            if node.leaf:
                leaf_depths.append(depth)
                return
            for rect, child in node.entries:
                assert isinstance(child, _Node)
                assert child.parent is node, "broken parent pointer"
                assert rect.contains_rect(child.mbr()), "MBR too small"
                walk(child, depth + 1, leaf_depths)

        leaf_depths: List[int] = []
        if self._root.entries or self._root.leaf:
            walk(self._root, 0, leaf_depths)
        assert len(set(leaf_depths)) <= 1, "leaves at different depths"
        assert sum(1 for _ in self.items()) == self._size, "size mismatch"
