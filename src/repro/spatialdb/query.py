"""A small spatial query language over the spatial-objects table.

"Furthermore, modeling the physical space allows SQL queries on
objects and regions.  An example query is 'Where is the nearest region
that has power outlets and high Bluetooth signal?'" (Section 5.1).

The dialect is a purposeful subset of SQL with two spatial extensions:

    SELECT * FROM spatial_objects
      WHERE object_type = 'Room'
        AND properties.power_outlets = true
        AND properties.bluetooth_signal >= 0.8
      NEAREST TO (150, 20)
      LIMIT 1

    SELECT glob, object_type FROM spatial_objects
      WHERE INTERSECTS(140, 0, 200, 40)

Conditions: ``column op literal`` with ops ``= != < <= > >=``; columns
are the table's scalar columns, ``glob`` (the full GLOB string) or
``properties.<name>``.  Spatial predicates: ``CONTAINS(x, y)`` (the
object's MBR holds the point) and ``INTERSECTS(x0, y0, x1, y1)``
(MBR overlap, R-tree accelerated).  ``NEAREST TO (x, y)`` orders by
MBR distance; ``LIMIT n`` caps the rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.geometry import Point, Rect

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<string>'(?:[^'\\]|\\.)*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<op><=|>=|!=|=|<|>)"
    r"|(?P<punct>[(),*])"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_./\-]*))")

_KEYWORDS = {"select", "from", "where", "and", "nearest", "to", "limit",
             "contains", "intersects", "true", "false", "null"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    stripped = text.strip()
    while pos < len(stripped):
        match = _TOKEN_RE.match(stripped, pos)
        if match is None or match.end() == pos:
            raise QueryError(f"cannot tokenize query at: "
                             f"{stripped[pos:pos + 20]!r}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)  # type: ignore[arg-type]
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(("keyword", value.lower()))
        else:
            tokens.append((kind, value))  # type: ignore[arg-type]
    return tokens


@dataclass
class _Condition:
    """One WHERE conjunct, compiled to a row predicate."""

    predicate: Callable[[Dict[str, Any]], bool]
    # A rectangle that any matching row's MBR must intersect; lets the
    # executor seed from the R-tree instead of scanning.
    prefilter: Optional[Rect] = None


@dataclass
class SpatialQuery:
    """A parsed query, executable against a SpatialDatabase."""

    columns: Optional[List[str]]       # None = SELECT *
    conditions: List[_Condition] = field(default_factory=list)
    nearest: Optional[Point] = None
    limit: Optional[int] = None


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) \
            else None

    def take(self, kind: Optional[str] = None,
             value: Optional[str] = None) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if kind is not None and token[0] != kind:
            raise QueryError(f"expected {kind}, got {token[1]!r}")
        if value is not None and token[1] != value:
            raise QueryError(f"expected {value!r}, got {token[1]!r}")
        self.pos += 1
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token == ("keyword", word)

    # ------------------------------------------------------------------

    def parse(self) -> SpatialQuery:
        self.take("keyword", "select")
        columns = self._parse_columns()
        self.take("keyword", "from")
        table = self.take("word")[1]
        if table != "spatial_objects":
            raise QueryError(
                f"unknown table {table!r} (only spatial_objects)")
        query = SpatialQuery(columns=columns)
        if self.at_keyword("where"):
            self.take()
            query.conditions.append(self._parse_condition())
            while self.at_keyword("and"):
                self.take()
                query.conditions.append(self._parse_condition())
        if self.at_keyword("nearest"):
            self.take()
            self.take("keyword", "to")
            self.take("punct", "(")
            x = float(self.take("number")[1])
            self.take("punct", ",")
            y = float(self.take("number")[1])
            self.take("punct", ")")
            query.nearest = Point(x, y)
        if self.at_keyword("limit"):
            self.take()
            query.limit = int(float(self.take("number")[1]))
            if query.limit < 0:
                raise QueryError("LIMIT must be non-negative")
        if self.peek() is not None:
            raise QueryError(f"trailing tokens: {self.peek()[1]!r}")
        return query

    def _parse_columns(self) -> Optional[List[str]]:
        if self.peek() == ("punct", "*"):
            self.take()
            return None
        columns = [self._parse_column_name()]
        while self.peek() == ("punct", ","):
            self.take()
            columns.append(self._parse_column_name())
        return columns

    def _parse_column_name(self) -> str:
        return self.take("word")[1]

    def _parse_condition(self) -> _Condition:
        token = self.peek()
        if token == ("keyword", "contains"):
            self.take()
            self.take("punct", "(")
            x = float(self.take("number")[1])
            self.take("punct", ",")
            y = float(self.take("number")[1])
            self.take("punct", ")")
            point = Point(x, y)
            probe = Rect(x, y, x, y)
            return _Condition(
                lambda row: row["mbr"].contains_point(point),
                prefilter=probe)
        if token == ("keyword", "intersects"):
            self.take()
            self.take("punct", "(")
            values = [float(self.take("number")[1])]
            for _ in range(3):
                self.take("punct", ",")
                values.append(float(self.take("number")[1]))
            self.take("punct", ")")
            rect = Rect(*values)
            return _Condition(lambda row: row["mbr"].intersects(rect),
                              prefilter=rect)
        column = self.take("word")[1]
        op = self.take("op")[1]
        literal = self._parse_literal()
        getter = _column_getter(column)
        comparator = _COMPARATORS[op]
        return _Condition(
            lambda row: _safe_compare(comparator, getter(row), literal))

    def _parse_literal(self) -> Any:
        token = self.peek()
        if token is None:
            raise QueryError("expected a literal")
        kind, value = token
        self.take()
        if kind == "string":
            return value[1:-1].replace("\\'", "'")
        if kind == "number":
            number = float(value)
            return int(number) if number.is_integer() else number
        if kind == "keyword" and value in ("true", "false", "null"):
            return {"true": True, "false": False, "null": None}[value]
        raise QueryError(f"invalid literal {value!r}")


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_SCALAR_COLUMNS = ("object_identifier", "glob_prefix", "object_type",
                   "geometry_type")


def _column_getter(column: str) -> Callable[[Dict[str, Any]], Any]:
    if column.startswith("properties."):
        key = column[len("properties."):]
        return lambda row: row["properties"].get(key)
    if column == "glob":
        return lambda row: (row["glob_prefix"] + "/"
                            + row["object_identifier"]
                            if row["glob_prefix"]
                            else row["object_identifier"])
    if column in _SCALAR_COLUMNS:
        return lambda row: row[column]
    raise QueryError(f"unknown column {column!r}")


def _safe_compare(comparator: Callable[[Any, Any], bool],
                  left: Any, right: Any) -> bool:
    """Comparisons against missing/mistyped values are simply false
    (SQL's NULL semantics, loosely)."""
    try:
        if left is None and right is not None:
            return False
        return bool(comparator(left, right))
    except TypeError:
        return False


def parse_query(text: str) -> SpatialQuery:
    """Parse the query text (raises :class:`QueryError` on bad input)."""
    return _Parser(text).parse()


def execute_query(db, text: str) -> List[Dict[str, Any]]:
    """Parse and run a query against a :class:`SpatialDatabase`.

    Returns plain row dicts; with explicit columns, each row carries
    exactly those (plus ``distance`` when NEAREST TO is used).
    """
    query = parse_query(text)

    # Seed from the R-tree when a spatial prefilter exists.
    prefilters = [c.prefilter for c in query.conditions
                  if c.prefilter is not None]
    if prefilters:
        seed_rect = prefilters[0]
        for extra in prefilters[1:]:
            overlap = seed_rect.intersection(extra)
            if overlap is None:
                return []
            seed_rect = overlap
        candidate_globs = db.objects_intersecting(seed_rect)
        rows = [db.object_row(glob) for glob in candidate_globs]
    else:
        rows = db.spatial_objects.select()

    matched = [row for row in rows
               if all(c.predicate(row) for c in query.conditions)]

    if query.nearest is not None:
        origin = query.nearest
        matched.sort(key=lambda row: (row["mbr"].distance_to_point(origin),
                                      row["glob_prefix"],
                                      row["object_identifier"]))
    else:
        matched.sort(key=lambda row: (row["glob_prefix"],
                                      row["object_identifier"]))

    if query.limit is not None:
        matched = matched[: query.limit]

    if query.columns is None:
        out = [dict(row) for row in matched]
    else:
        getters = [(name, _column_getter(name)) for name in query.columns]
        out = [{name: getter(row) for name, getter in getters}
               for row in matched]
    if query.nearest is not None:
        for row, source in zip(out, matched):
            row["distance"] = source["mbr"].distance_to_point(
                query.nearest)
    return out
