"""Spatial database: typed tables, R-tree index, triggers (Section 5).

An in-memory substitute for the paper's PostGIS/PostgreSQL deployment
exposing the same surface: a spatial-objects table for the physical
model, a sensor-readings table with TTL expiry, a sensor-metadata
table (confidence / time-to-live), geometric operators, and location
triggers.
"""

from repro.spatialdb.database import (
    SENSOR_READINGS_SCHEMA,
    SENSOR_SPECS_SCHEMA,
    SPATIAL_OBJECTS_SCHEMA,
    SpatialDatabase,
)
from repro.spatialdb.query import SpatialQuery, execute_query, parse_query
from repro.spatialdb.rtree import RTree
from repro.spatialdb.table import Column, Row, Schema, Table, Trigger

__all__ = [
    "Column",
    "RTree",
    "Row",
    "SENSOR_READINGS_SCHEMA",
    "SENSOR_SPECS_SCHEMA",
    "SPATIAL_OBJECTS_SCHEMA",
    "Schema",
    "SpatialDatabase",
    "SpatialQuery",
    "Table",
    "Trigger",
    "execute_query",
    "parse_query",
]
