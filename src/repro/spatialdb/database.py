"""The spatial database (paper Section 5).

Models the physical space, stores sensor readings and per-sensor
confidence/TTL metadata, provides geometric operators (distance,
containment, intersection) and location triggers.  This replaces
PostGIS/PostgreSQL from the paper with an in-memory engine exposing
the same operations, indexed by a from-scratch R-tree.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import QueryError, SensorError, WorldModelError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import Entity, Glob, WorldModel, geometry_kind
from repro.spatialdb.rtree import RTree
from repro.spatialdb.table import Column, Row, Schema, Table, Trigger

SPATIAL_OBJECTS_SCHEMA = Schema(
    [
        Column("object_identifier", str),
        Column("glob_prefix", str),
        Column("object_type", str),
        Column("geometry_type", str),
        Column("geometry", object),          # canonical-frame geometry
        Column("mbr", Rect),                 # canonical-frame MBR
        Column("properties", dict),
    ],
    primary_key=("glob_prefix", "object_identifier"),
)

SENSOR_READINGS_SCHEMA = Schema(
    [
        Column("reading_id", int),
        Column("sensor_id", str),
        Column("glob_prefix", str),          # where the sensor is installed
        Column("sensor_type", str),
        Column("mobile_object_id", str),
        Column("location", Point, nullable=True),   # canonical coordinates
        Column("detection_radius", float),
        Column("rect", Rect),                # canonical MBR of the reading
        Column("detection_time", float),
        Column("moving", bool),
    ],
    primary_key=("reading_id",),
)

SENSOR_SPECS_SCHEMA = Schema(
    [
        Column("sensor_id", str),
        Column("sensor_type", str),
        Column("confidence", float),         # percent, as in Table 2
        Column("time_to_live", float),       # seconds
        Column("spec", object, nullable=True),  # the full SensorSpec object
    ],
    primary_key=("sensor_id",),
)


class SpatialDatabase:
    """Spatial model + sensor store + trigger engine.

    Args:
        world: the world model to load; entities become rows of the
            spatial-objects table with canonical-frame geometry.
        history_limit: readings retained per (sensor, object) pair for
            movement detection.
    """

    def __init__(self, world: Optional[WorldModel] = None,
                 history_limit: int = 8) -> None:
        self.spatial_objects = Table("spatial_objects", SPATIAL_OBJECTS_SCHEMA)
        self.sensor_readings = Table("sensor_readings", SENSOR_READINGS_SCHEMA)
        # Fusion always fetches one object's readings; index that path.
        self.sensor_readings.create_index("mobile_object_id")
        # Insert triggers (one per region subscription) dispatch via an
        # R-tree over their regions instead of a per-trigger scan.
        self.sensor_readings.enable_spatial_triggers("rect")
        self.sensor_specs = Table("sensor_specs", SENSOR_SPECS_SCHEMA)
        self._index: RTree = RTree()
        self._world: Optional[WorldModel] = None
        self._next_reading_id = 1
        self._history_limit = history_limit
        # (sensor_id, object_id) -> recent [(time, rect)] for movement
        self._history: Dict[Tuple[str, str], List[Tuple[float, Rect]]] = {}
        # Per-object MBR of every reading rect ever inserted, plus a
        # version bumped on each insert.  The support only grows (row
        # deletion leaves it a superset), which is what makes it a
        # sound pruning bound for region queries: an object whose
        # support is disjoint from a query region has zero fused
        # confidence there at any timestamp.
        self._reading_support: Dict[str, Rect] = {}
        self._reading_version: Dict[str, int] = {}
        # Guards reading-id allocation and movement history: pipeline
        # workers insert readings concurrently from several threads.
        self._ingest_lock = threading.Lock()
        # Optional durability journal (repro.storage.DurabilityManager).
        # None = DurabilityMode.OFF: every mutator below short-circuits
        # the journal branch, keeping this path bit-identical to the
        # undurable build.
        self.journal = None
        if world is not None:
            self.load_world(world)

    def attach_journal(self, journal) -> None:
        """Install (or with ``None`` remove) the durability journal.

        With a journal attached every mutation is appended to the WAL
        *before* it is applied — if the append raises, the database is
        left untouched (the write-ahead contract).
        """
        self.journal = journal

    # ------------------------------------------------------------------
    # World model
    # ------------------------------------------------------------------

    @property
    def world(self) -> WorldModel:
        if self._world is None:
            raise WorldModelError("no world model loaded")
        return self._world

    def load_world(self, world: WorldModel) -> None:
        """Load every world-model entity into the spatial-objects table."""
        if self._world is not None:
            raise WorldModelError("a world model is already loaded")
        self._world = world
        for entity in world.entities():
            geometry = world.canonical_geometry(entity.glob)
            mbr = world.canonical_mbr(entity.glob)
            row = {
                "object_identifier": entity.identifier,
                "glob_prefix": entity.glob_prefix,
                "object_type": entity.entity_type.value,
                "geometry_type": geometry_kind(geometry),
                "geometry": geometry,
                "mbr": mbr,
                "properties": dict(entity.properties),
            }
            self.spatial_objects.insert(row)
            self._index.insert(mbr, str(entity.glob))

    def universe(self) -> Rect:
        """The universe rectangle ``U`` (the whole modelled floor area)."""
        return self.world.universe()

    # ------------------------------------------------------------------
    # Spatial-object queries
    # ------------------------------------------------------------------

    def object_row(self, glob: Union[Glob, str]) -> Row:
        parsed = Glob.parse(str(glob))
        leaf = parsed.leaf
        if leaf is None:
            raise QueryError(f"GLOB {glob} does not name an object")
        row = self.spatial_objects.get("/".join(parsed.prefix), leaf)
        if row is None:
            raise QueryError(f"unknown spatial object {glob}")
        return row

    def object_mbr(self, glob: Union[Glob, str]) -> Rect:
        return self.object_row(glob)["mbr"]

    def object_geometry(self, glob: Union[Glob, str]) -> object:
        return self.object_row(glob)["geometry"]

    def objects_intersecting(self, rect: Rect,
                             object_type: Optional[str] = None) -> List[str]:
        """GLOB strings of objects whose MBR intersects ``rect``."""
        globs: List[str] = self._index.search(rect)
        if object_type is None:
            return sorted(globs)
        out = []
        for g in globs:
            if self.object_row(g)["object_type"] == object_type:
                out.append(g)
        return sorted(out)

    def objects_containing_point(self, p: Point,
                                 object_type: Optional[str] = None,
                                 exact: bool = True) -> List[str]:
        """Objects whose geometry (or MBR when ``exact=False``) holds ``p``.

        The two-phase filter/refine strategy of Section 5.1: MBR test
        via the R-tree first, then the exact polygon test.
        """
        candidates = self._index.search_point(p)
        out: List[str] = []
        for glob in candidates:
            row = self.object_row(glob)
            if object_type is not None and row["object_type"] != object_type:
                continue
            if exact:
                geometry = row["geometry"]
                if isinstance(geometry, Polygon) and not geometry.contains_point(p):
                    continue
                if isinstance(geometry, Segment) and not geometry.contains_point(p):
                    continue
                if isinstance(geometry, Point) and not geometry.almost_equals(p):
                    continue
            out.append(glob)
        return sorted(out)

    def nearest_objects(self, p: Point, count: int = 1,
                        where: Optional[Callable[[Row], bool]] = None
                        ) -> List[Tuple[str, float]]:
        """The nearest objects to ``p`` with their MBR distances.

        ``where`` filters rows — this is how queries like "the nearest
        region that has power outlets and high Bluetooth signal"
        (Section 5.1) are expressed.
        """
        # Over-fetch when filtering, then trim.
        fetch = count if where is None else max(count * 8, 32)
        results: List[Tuple[str, float]] = []
        for rect, glob in self._index.nearest(p, fetch):
            row = self.object_row(glob)
            if where is not None and not where(row):
                continue
            results.append((glob, rect.distance_to_point(p)))
            if len(results) == count:
                break
        return results

    # ------------------------------------------------------------------
    # Geometric operators (the PostGIS surface MiddleWhere relies on)
    # ------------------------------------------------------------------

    def distance(self, a: Union[Glob, str], b: Union[Glob, str]) -> float:
        """Euclidean distance between the centers of two objects' MBRs."""
        return self.object_mbr(a).center_distance(self.object_mbr(b))

    def contains(self, outer: Union[Glob, str],
                 inner: Union[Glob, str]) -> bool:
        """Whether ``outer``'s MBR fully contains ``inner``'s."""
        return self.object_mbr(outer).contains_rect(self.object_mbr(inner))

    def intersection_area(self, a: Union[Glob, str],
                          b: Union[Glob, str]) -> float:
        """Overlap area of two objects' MBRs."""
        return self.object_mbr(a).intersection_area(self.object_mbr(b))

    def disjoint(self, a: Union[Glob, str], b: Union[Glob, str]) -> bool:
        return self.object_mbr(a).is_disjoint(self.object_mbr(b))

    def query(self, text: str) -> List[Row]:
        """Run a spatial SQL query (see :mod:`repro.spatialdb.query`).

        >>> db.query("SELECT glob FROM spatial_objects "
        ...          "WHERE object_type = 'Room' "
        ...          "NEAREST TO (150, 20) LIMIT 1")  # doctest: +SKIP
        """
        from repro.spatialdb.query import execute_query
        return execute_query(self, text)

    # ------------------------------------------------------------------
    # Sensor metadata
    # ------------------------------------------------------------------

    def register_sensor(self, sensor_id: str, sensor_type: str,
                        confidence: float, time_to_live: float,
                        spec: Optional[object] = None) -> None:
        """Register a sensor's confidence (percent) and TTL (Table 2)."""
        if not 0.0 <= confidence <= 100.0:
            raise SensorError(f"confidence {confidence} not a percentage")
        if time_to_live <= 0.0:
            raise SensorError(f"TTL must be positive, got {time_to_live}")
        if self.journal is not None:
            self.journal.log_register_sensor(
                sensor_id, sensor_type, confidence, time_to_live, spec)
        self.sensor_specs.insert({
            "sensor_id": sensor_id,
            "sensor_type": sensor_type,
            "confidence": confidence,
            "time_to_live": time_to_live,
            "spec": spec,
        })

    def sensor_row(self, sensor_id: str) -> Row:
        row = self.sensor_specs.get(sensor_id)
        if row is None:
            raise SensorError(f"unknown sensor {sensor_id!r}")
        return row

    # ------------------------------------------------------------------
    # Sensor readings
    # ------------------------------------------------------------------

    def insert_reading(self, sensor_id: str, glob_prefix: str,
                       sensor_type: str, mobile_object_id: str,
                       rect: Rect, detection_time: float,
                       location: Optional[Point] = None,
                       detection_radius: float = 0.0,
                       fire_triggers: bool = True) -> int:
        """Record a normalized sensor reading; fires insert triggers.

        The ``moving`` flag is computed against this sensor's previous
        reading for the same object — the paper's conflict rule 1
        prefers "a rectangle moving with time" (Section 4.1.2).
        ``fire_triggers=False`` is the ingestion pipeline's path: it
        evaluates subscriptions once per fused batch instead of once
        per insert.
        """
        journal = self.journal
        if journal is None:
            with self._ingest_lock:
                key = (sensor_id, mobile_object_id)
                history = self._history.setdefault(key, [])
                moving = (bool(history)
                          and not history[-1][1].almost_equals(rect, 1e-9))
                history.append((detection_time, rect))
                if len(history) > self._history_limit:
                    history.pop(0)
                reading_id = self._next_reading_id
                self._next_reading_id += 1
                # Grow the support BEFORE the row lands so a concurrent
                # region query never sees the row without its bound.
                prior = self._reading_support.get(mobile_object_id)
                self._reading_support[mobile_object_id] = \
                    rect if prior is None else prior.union_mbr(rect)
                self._reading_version[mobile_object_id] = \
                    self._reading_version.get(mobile_object_id, 0) + 1
            self.sensor_readings.insert({
                "reading_id": reading_id,
                "sensor_id": sensor_id,
                "glob_prefix": glob_prefix,
                "sensor_type": sensor_type,
                "mobile_object_id": mobile_object_id,
                "location": location,
                "detection_radius": float(detection_radius),
                "rect": rect,
                "detection_time": float(detection_time),
                "moving": moving,
            }, fire_triggers=fire_triggers)
            return reading_id
        # Durable path: append the materialized row (tentative id,
        # computed ``moving``) to the WAL, and only then mutate any
        # state — a crash inside the log call leaves no trace here, so
        # the survivor and a replay of the WAL agree exactly.  Logging
        # under the ingest lock makes WAL order match reading-id order;
        # everything that does not depend on in-lock state (the bulk of
        # the record encode) happens before the lock so four pipeline
        # workers do not convoy on it.
        detection_radius = float(detection_radius)
        detection_time = float(detection_time)
        parts = journal.prepare_insert(
            sensor_id, glob_prefix, sensor_type, mobile_object_id,
            location, detection_radius, rect, detection_time)
        with self._ingest_lock:
            key = (sensor_id, mobile_object_id)
            peek = self._history.get(key)
            moving = (bool(peek)
                      and not peek[-1][1].almost_equals(rect, 1e-9))
            journal.log_prepared_insert(parts, self._next_reading_id,
                                        moving)
            reading_id = self._next_reading_id
            self._next_reading_id += 1
            history = self._history.setdefault(key, [])
            history.append((detection_time, rect))
            if len(history) > self._history_limit:
                history.pop(0)
            prior = self._reading_support.get(mobile_object_id)
            self._reading_support[mobile_object_id] = \
                rect if prior is None else prior.union_mbr(rect)
            self._reading_version[mobile_object_id] = \
                self._reading_version.get(mobile_object_id, 0) + 1
        self.sensor_readings.insert({
            "reading_id": reading_id,
            "sensor_id": sensor_id,
            "glob_prefix": glob_prefix,
            "sensor_type": sensor_type,
            "mobile_object_id": mobile_object_id,
            "location": location,
            "detection_radius": detection_radius,
            "rect": rect,
            "detection_time": detection_time,
            "moving": moving,
        }, fire_triggers=fire_triggers)
        # Deferred group commit, outside the ingest lock so the fsync
        # never stalls concurrent inserters.
        journal.commit_if_due()
        return reading_id

    def apply_logged_insert(self, row: Row) -> int:
        """Restore one WAL-logged reading row verbatim (recovery path).

        The row keeps its original ``reading_id`` and ``moving`` flag;
        the id allocator, movement history and support MBRs advance
        exactly as the original insert advanced them.  Triggers never
        fire during replay — recovered subscriptions are reinstated
        separately and must not see historical events again.
        """
        with self._ingest_lock:
            reading_id = int(row["reading_id"])
            self._next_reading_id = max(self._next_reading_id,
                                        reading_id + 1)
            key = (row["sensor_id"], row["mobile_object_id"])
            history = self._history.setdefault(key, [])
            history.append((row["detection_time"], row["rect"]))
            if len(history) > self._history_limit:
                history.pop(0)
            object_id = row["mobile_object_id"]
            prior = self._reading_support.get(object_id)
            self._reading_support[object_id] = \
                row["rect"] if prior is None \
                else prior.union_mbr(row["rect"])
            self._reading_version[object_id] = \
                self._reading_version.get(object_id, 0) + 1
        self.sensor_readings.insert(dict(row), fire_triggers=False)
        return reading_id

    def readings_for(self, mobile_object_id: str, now: float,
                     latest_per_sensor: bool = True) -> List[Row]:
        """Fresh (non-expired) readings for an object at time ``now``.

        A reading expires once ``now - detection_time`` exceeds the
        sensor's TTL ("All sensor readings have an expiry time, beyond
        which the reading is no longer valid", Section 3.2).  With
        ``latest_per_sensor`` only the newest reading per sensor is
        kept, which is what fusion consumes.
        """
        rows = self.sensor_readings.select_eq("mobile_object_id",
                                              mobile_object_id)
        fresh: List[Row] = []
        for row in rows:
            spec = self.sensor_specs.get(row["sensor_id"])
            ttl = spec["time_to_live"] if spec else float("inf")
            age = now - row["detection_time"]
            if 0.0 <= age <= ttl:
                fresh.append(row)
        if not latest_per_sensor:
            return fresh
        latest: Dict[str, Row] = {}
        for row in fresh:
            prior = latest.get(row["sensor_id"])
            if prior is None or row["detection_time"] > prior["detection_time"]:
                latest[row["sensor_id"]] = row
        return sorted(latest.values(), key=lambda r: r["reading_id"])

    def expire_object_readings(self, mobile_object_id: str,
                               sensor_id: Optional[str] = None) -> int:
        """Force-expire readings (manual logout, Section 6 item 3)."""
        def doomed(row: Row) -> bool:
            if row["mobile_object_id"] != mobile_object_id:
                return False
            return sensor_id is None or row["sensor_id"] == sensor_id
        journal = self.journal
        if journal is None:
            return self.sensor_readings.delete(doomed)
        rows = self.sensor_readings.select(doomed)
        journal.log_expire(mobile_object_id, sensor_id,
                           [row["reading_id"] for row in rows])
        return self._delete_logged_rows(rows)

    def purge_expired(self, now: float) -> int:
        """Drop every reading past its sensor's TTL; returns the count."""
        def expired(row: Row) -> bool:
            spec = self.sensor_specs.get(row["sensor_id"])
            ttl = spec["time_to_live"] if spec else float("inf")
            return now - row["detection_time"] > ttl
        journal = self.journal
        if journal is None:
            return self.sensor_readings.delete(expired)
        rows = self.sensor_readings.select(expired)
        journal.log_purge(now, [row["reading_id"] for row in rows])
        return self._delete_logged_rows(rows)

    def _delete_logged_rows(self, rows: List[Row]) -> int:
        """Delete exactly the rows a just-written WAL record named.

        Deletes are logged with the doomed reading ids (not the
        predicate) so replay never re-evaluates a time/TTL condition
        whose answer depends on how live threads interleaved; deleting
        by id here keeps the live table in lockstep with that record.
        """
        if not rows:
            return 0
        ids = {row["reading_id"] for row in rows}
        count = self.sensor_readings.delete(
            lambda row: row["reading_id"] in ids)
        self.journal.note_deleted(rows)
        return count

    def tracked_objects(self) -> List[str]:
        """All mobile-object ids that have at least one stored reading.

        Reads the mobile-object hash index (O(objects)); the full-scan
        form is kept as :meth:`tracked_objects_reference`.
        """
        return self.sensor_readings.index_keys("mobile_object_id")

    def tracked_objects_reference(self) -> List[str]:
        """The pre-index full scan, kept for equivalence tests."""
        return sorted({row["mobile_object_id"]
                       for row in self.sensor_readings.select()})

    def reading_support(self, mobile_object_id: str) -> Optional[Rect]:
        """MBR of every reading rect ever inserted for an object.

        A conservative (grow-only) bound on where the object's fused
        distribution can place any probability mass: region queries
        prune objects whose support is disjoint from the query rect.
        """
        with self._ingest_lock:
            return self._reading_support.get(mobile_object_id)

    def reading_version(self, mobile_object_id: str) -> int:
        """Monotonic per-object counter bumped on every reading insert.

        Lets callers validate cached per-object state (e.g. the
        Location Service's last-fusion support MBRs): a version read
        *before* fetching readings is stale — and the cached entry is
        discarded — whenever a newer reading has landed since.
        """
        with self._ingest_lock:
            return self._reading_version.get(mobile_object_id, 0)

    def rebuild_reading_support(self) -> None:
        """Recompute the support MBRs from the rows actually present.

        The live support is a grow-only union (sound but ever-looser
        as readings churn).  After a snapshot restore, WAL replay or
        retention compaction, the union over the *live* rows is the
        tightest bound that is still sound — every future fusion reads
        only live rows — so pruned region queries stay equivalent to
        the reference scan while pruning more.  Versions keep ticking
        monotonically so cached per-object state is invalidated, never
        accidentally revalidated.
        """
        support: Dict[str, Rect] = {}
        for row in self.sensor_readings.select():
            object_id = row["mobile_object_id"]
            prior = support.get(object_id)
            support[object_id] = \
                row["rect"] if prior is None \
                else prior.union_mbr(row["rect"])
        with self._ingest_lock:
            versions = dict(self._reading_version)
            for object_id in set(support) | set(self._reading_support):
                versions[object_id] = versions.get(object_id, 0) + 1
            self._reading_support = support
            self._reading_version = versions

    # ------------------------------------------------------------------
    # Location triggers (Section 5.3)
    # ------------------------------------------------------------------

    def create_location_trigger(self, trigger_id: str, region: Rect,
                                action: Callable[[Row], None],
                                mobile_object_id: Optional[str] = None
                                ) -> None:
        """Create a trigger firing when a reading intersects ``region``.

        The database-level trigger is a coarse geometric filter; the
        Location Service refines each firing with fused probability
        before notifying the application.
        """
        def condition(row: Row) -> bool:
            if (mobile_object_id is not None
                    and row["mobile_object_id"] != mobile_object_id):
                return False
            return region.intersects(row["rect"])

        if self.journal is not None:
            self.journal.log_create_trigger(trigger_id, region,
                                            mobile_object_id)
        self.sensor_readings.create_trigger(
            Trigger(trigger_id, "insert", condition, action,
                    region=region))

    def drop_location_trigger(self, trigger_id: str) -> bool:
        if self.journal is not None:
            self.journal.log_drop_trigger(trigger_id)
        return self.sensor_readings.drop_trigger(trigger_id)
