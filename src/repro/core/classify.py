"""Classifying the probability space (paper Section 4.4).

"Our current implementation divides the probability space into 4
regions based on the accuracy of various sensors:

    (0, min(p_i's of all sensors)]                      : low
    (min(p_i's of all sensors), median of all p_i's]    : medium
    (median of all p_i's, highest of all p_i's]         : high
    (highest of all p_i's, 1]                           : very high"

The boundaries come from the *deployed sensor population*, so an
installation with weak sensors grades on a gentler curve — exactly the
paper's intent of sparing application developers from raw numbers.
"""

from __future__ import annotations

import statistics
from enum import Enum
from typing import List, Sequence

from repro.errors import FusionError


class ProbabilityBucket(str, Enum):
    """The four application-facing confidence grades."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    VERY_HIGH = "very_high"

    def __ge__(self, other: "ProbabilityBucket") -> bool:  # type: ignore[override]
        return _ORDER[self] >= _ORDER[other]

    def __gt__(self, other: "ProbabilityBucket") -> bool:  # type: ignore[override]
        return _ORDER[self] > _ORDER[other]

    def __le__(self, other: "ProbabilityBucket") -> bool:  # type: ignore[override]
        return _ORDER[self] <= _ORDER[other]

    def __lt__(self, other: "ProbabilityBucket") -> bool:  # type: ignore[override]
        return _ORDER[self] < _ORDER[other]


_ORDER = {
    ProbabilityBucket.LOW: 0,
    ProbabilityBucket.MEDIUM: 1,
    ProbabilityBucket.HIGH: 2,
    ProbabilityBucket.VERY_HIGH: 3,
}


class ProbabilityClassifier:
    """Buckets probabilities using the deployed sensors' ``p`` values."""

    def __init__(self, sensor_ps: Sequence[float]) -> None:
        ps = [float(p) for p in sensor_ps]
        if not ps:
            raise FusionError("classifier needs at least one sensor p")
        for p in ps:
            if not 0.0 <= p <= 1.0:
                raise FusionError(f"sensor p={p} is not a probability")
        self.low_bound = min(ps)
        self.medium_bound = statistics.median(ps)
        self.high_bound = max(ps)

    @property
    def boundaries(self) -> List[float]:
        """The three bucket boundaries: [min, median, max] of sensor ps."""
        return [self.low_bound, self.medium_bound, self.high_bound]

    def classify(self, probability: float) -> ProbabilityBucket:
        """The bucket a probability falls in.

        >>> ProbabilityClassifier([0.5, 0.8, 0.95]).classify(0.9).value
        'high'
        """
        if not 0.0 <= probability <= 1.0:
            raise FusionError(f"{probability} is not a probability")
        if probability <= self.low_bound:
            return ProbabilityBucket.LOW
        if probability <= self.medium_bound:
            return ProbabilityBucket.MEDIUM
        if probability <= self.high_bound:
            return ProbabilityBucket.HIGH
        return ProbabilityBucket.VERY_HIGH

    def at_least(self, probability: float,
                 bucket: ProbabilityBucket) -> bool:
        """Whether ``probability`` grades at or above ``bucket``.

        Applications "can choose to be notified if the location of the
        person is known with low, medium, high or very high
        probability" — this is the threshold test behind that choice.
        """
        return self.classify(probability) >= bucket
