"""The paper's primary contribution: probabilistic multi-sensor fusion.

Everything in Sections 3.2 and 4.1-4.4 lives here: the sensor error
model (x, y, z -> p, q), temporal degradation functions, normalized
readings, the containment lattice of sensor rectangles, the Bayesian
fusion equations (4)-(7), conflict resolution for disjoint readings,
and the classification of the probability space into application-
facing buckets.
"""

from repro.core.calibration import (
    BinomialEstimator,
    CalibrationReport,
    CarryProbabilityEstimator,
    DetectionProbabilityEstimator,
    MisidentificationEstimator,
    RateEstimate,
    TdfFit,
    TdfFitter,
    wilson_interval,
)
from repro.core.classify import ProbabilityBucket, ProbabilityClassifier
from repro.core.conflict import (
    DEFAULT_RULES,
    ConflictResolver,
    ConflictRule,
    FreshestReadingRule,
    HighestProbabilityRule,
    MovingRectangleRule,
)
from repro.core.engine import (
    MODE_EQ7,
    MODE_EXACT,
    FusionEngine,
    FusionResult,
)
from repro.core.estimate import LocationEstimate
from repro.core.fusion import (
    Cell,
    CellDecomposition,
    WeightedRect,
    batch_region_probabilities,
    eq7_region_probability,
    exact_region_probability,
    support_confidence,
)
from repro.core.lattice import BOTTOM, TOP, LatticeNode, RegionLattice
from repro.core.pairwise import (
    eq4_containment,
    eq4_from_rects,
    eq5_single_sensor,
    eq6_corrected,
    eq6_from_rects,
    eq6_intersection,
)
from repro.core.reading import (
    NormalizedReading,
    reading_from_coordinate,
    reading_from_region,
)
from repro.core.sensorspec import SensorSpec, derive_pq
from repro.core.tdf import (
    ConstantTDF,
    ExponentialTDF,
    LinearTDF,
    StepTDF,
    TemporalDegradationFunction,
)

__all__ = [
    "BOTTOM",
    "BinomialEstimator",
    "CalibrationReport",
    "CarryProbabilityEstimator",
    "Cell",
    "CellDecomposition",
    "DetectionProbabilityEstimator",
    "MisidentificationEstimator",
    "RateEstimate",
    "TdfFit",
    "TdfFitter",
    "wilson_interval",
    "ConflictResolver",
    "ConflictRule",
    "ConstantTDF",
    "DEFAULT_RULES",
    "ExponentialTDF",
    "FreshestReadingRule",
    "FusionEngine",
    "FusionResult",
    "HighestProbabilityRule",
    "LatticeNode",
    "LinearTDF",
    "LocationEstimate",
    "MODE_EQ7",
    "MODE_EXACT",
    "MovingRectangleRule",
    "NormalizedReading",
    "ProbabilityBucket",
    "ProbabilityClassifier",
    "RegionLattice",
    "SensorSpec",
    "StepTDF",
    "TOP",
    "TemporalDegradationFunction",
    "WeightedRect",
    "derive_pq",
    "eq4_containment",
    "eq4_from_rects",
    "eq5_single_sensor",
    "eq6_corrected",
    "eq6_from_rects",
    "eq6_intersection",
    "batch_region_probabilities",
    "eq7_region_probability",
    "exact_region_probability",
    "reading_from_coordinate",
    "reading_from_region",
    "support_confidence",
]
