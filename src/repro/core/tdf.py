"""Temporal degradation functions (paper Section 3.2).

"Our location model employs a temporal degradation function (tdf) that
reduces the confidence of the location information from a particular
sensor with time: tdf_sensor-type : conf x time -> conf.  The tdf may
degrade the confidence in a continuous or in a discrete manner."

Every tdf maps (confidence, age_seconds) to a degraded confidence and
is monotone non-increasing in age with ``degrade(c, 0) == c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, Tuple

from repro.errors import SensorError


class TemporalDegradationFunction(Protocol):
    """The tdf signature: conf x time -> conf."""

    def degrade(self, confidence: float, age_seconds: float) -> float:
        """Confidence after ``age_seconds`` have elapsed."""
        ...


def _check_inputs(confidence: float, age_seconds: float) -> None:
    if not 0.0 <= confidence <= 1.0:
        raise SensorError(f"confidence {confidence} outside [0, 1]")
    if age_seconds < 0.0:
        raise SensorError(f"negative reading age {age_seconds}")


@dataclass(frozen=True)
class ConstantTDF:
    """No degradation — confidence holds until the TTL expires the reading.

    Appropriate for sensors whose readings are either valid or expired,
    like Ubisense with its 3-second TTL (Table 2).
    """

    def degrade(self, confidence: float, age_seconds: float) -> float:
        _check_inputs(confidence, age_seconds)
        return confidence


@dataclass(frozen=True)
class LinearTDF:
    """Linear decay reaching zero at ``zero_at`` seconds.

    A card-swipe reading decays like this: certainty at swipe time,
    roughly linearly less afterwards as the person may have left.
    """

    zero_at: float

    def __post_init__(self) -> None:
        if self.zero_at <= 0.0:
            raise SensorError("zero_at must be positive")

    def degrade(self, confidence: float, age_seconds: float) -> float:
        _check_inputs(confidence, age_seconds)
        remaining = max(0.0, 1.0 - age_seconds / self.zero_at)
        return confidence * remaining


@dataclass(frozen=True)
class ExponentialTDF:
    """Exponential decay with a half-life, the continuous tdf archetype."""

    half_life: float

    def __post_init__(self) -> None:
        if self.half_life <= 0.0:
            raise SensorError("half_life must be positive")

    def degrade(self, confidence: float, age_seconds: float) -> float:
        _check_inputs(confidence, age_seconds)
        return confidence * math.pow(0.5, age_seconds / self.half_life)


@dataclass(frozen=True)
class StepTDF:
    """Discrete decay: confidence multiplied by a factor per step.

    ``steps`` is a sequence of (age_threshold_seconds, factor) pairs in
    increasing age order; the factor of the last crossed threshold
    applies.  This is the "discrete manner" tdf of Section 3.2 — e.g. a
    biometric login keeps full confidence for 30 seconds, then drops.
    """

    steps: Tuple[Tuple[float, float], ...]

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        ordered = tuple((float(a), float(f)) for a, f in steps)
        if not ordered:
            raise SensorError("StepTDF needs at least one step")
        ages = [a for a, _ in ordered]
        if ages != sorted(ages) or len(set(ages)) != len(ages):
            raise SensorError("StepTDF ages must be strictly increasing")
        factors = [f for _, f in ordered]
        if any(not 0.0 <= f <= 1.0 for f in factors):
            raise SensorError("StepTDF factors must lie in [0, 1]")
        if factors != sorted(factors, reverse=True):
            raise SensorError("StepTDF factors must be non-increasing")
        object.__setattr__(self, "steps", ordered)

    def degrade(self, confidence: float, age_seconds: float) -> float:
        _check_inputs(confidence, age_seconds)
        factor = 1.0
        for age_threshold, step_factor in self.steps:
            if age_seconds >= age_threshold:
                factor = step_factor
            else:
                break
        return confidence * factor
