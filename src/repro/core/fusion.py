"""Multi-sensor location fusion (paper Section 4.1.2, Equation 7).

Two computations are provided:

* :func:`eq7_region_probability` — the paper's general formula,
  verbatim.  This is the canonical engine used by the Location
  Service.
* :func:`exact_region_probability` and :class:`CellDecomposition` —
  the exact Bayesian posterior under the same model assumptions
  (conditional sensor independence, uniform prior over the universe).
  Equation (7) squares some area priors when more than one sensor
  reports (its numerator and denominator are products of
  area-weighted terms), so the two disagree slightly for n >= 2; the
  exact computation is the reference the ablation benches compare
  against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import FusionError
from repro.geometry import Rect

# One reading reduced to what Eq. (7) needs: its rectangle and (p, q).
WeightedRect = Tuple[Rect, float, float]


def _validate(readings: Sequence[WeightedRect], universe_area: float) -> None:
    if universe_area <= 0.0:
        raise FusionError("universe area must be positive")
    for i, (rect, p, q) in enumerate(readings):
        if not 0.0 <= p <= 1.0:
            raise FusionError(f"reading {i}: p={p} is not a probability")
        if not 0.0 <= q <= 1.0:
            raise FusionError(f"reading {i}: q={q} is not a probability")
        if rect.area > universe_area + 1e-6:
            raise FusionError(f"reading {i}: rect larger than the universe")


def eq7_region_probability(region: Rect,
                           readings: Sequence[WeightedRect],
                           universe_area: float) -> float:
    """P(person in ``region`` | all readings) via the paper's Eq. (7).

    ::

            prod_i [p_i * a_int(Ai,R) + q_i * (a_R - a_int(Ai,R))]
        -------------------------------------------------------------
            (numerator) +
            prod_i [p_i * (a_Ai - a_int(Ai,R)) +
                    q_i * (a_U - a_Ai + a_int(Ai,R))]

    With no readings the result is the uniform prior a_R / a_U.
    """
    _validate(readings, universe_area)
    area_r = region.area
    if not readings:
        return min(1.0, area_r / universe_area)
    numerator = 1.0
    denominator_term = 1.0
    for rect, p, q in readings:
        a_i = rect.area
        a_int = rect.intersection_area(region)
        numerator *= p * a_int + q * (area_r - a_int)
        denominator_term *= (p * (a_i - a_int)
                             + q * (universe_area - a_i + a_int))
    denominator = numerator + denominator_term
    if denominator <= 0.0:
        return 0.0
    return numerator / denominator


def exact_region_probability(region: Rect,
                             readings: Sequence[WeightedRect],
                             universe_area: float) -> float:
    """The exact posterior P(person in ``region`` | readings).

    Derived the same way as the paper's Equations (1)-(3): uniform
    prior ``a_R / a_U``; per reading,
    ``P(s_i says A_i | person in R) = p_i*f + q_i*(1-f)`` with
    ``f = a_int / a_R`` and the analogous expression outside R.  This
    reproduces Equations (4) and (5) exactly.
    """
    _validate(readings, universe_area)
    area_r = region.area
    if area_r <= 0.0:
        return 0.0
    area_r = min(area_r, universe_area)
    prior = area_r / universe_area
    if not readings:
        return prior
    outside = universe_area - area_r
    like_in = 1.0
    like_out = 1.0
    for rect, p, q in readings:
        a_i = rect.area
        a_int = rect.intersection_area(region)
        f_in = min(1.0, a_int / area_r)
        like_in *= p * f_in + q * (1.0 - f_in)
        if outside <= 0.0:
            f_out = 0.0
        else:
            f_out = min(1.0, max(0.0, (a_i - a_int) / outside))
        like_out *= p * f_out + q * (1.0 - f_out)
    numerator = like_in * prior
    denominator = numerator + like_out * (1.0 - prior)
    if denominator <= 0.0:
        return 0.0
    return numerator / denominator


def batch_region_probabilities(regions: Sequence[Rect],
                               readings: Sequence[WeightedRect],
                               universe_area: float,
                               exact: bool = True) -> List[float]:
    """Region probabilities for many regions in one validated pass.

    Bit-for-bit identical to calling :func:`exact_region_probability`
    (or :func:`eq7_region_probability` with ``exact=False``) per
    region — same expressions in the same order — but the input
    validation and per-reading areas are hoisted out of the loop.  The
    fusion engine uses this to evaluate every lattice node at once.
    """
    _validate(readings, universe_area)
    # Per-reading corners, (p, q) and areas unpacked once; the inner
    # loops below inline Rect.intersection_area (identical min/max
    # expressions, so results stay bit-for-bit equal to the scalar
    # functions) to avoid a method call per (region, reading) pair.
    unpacked = [(rect.min_x, rect.min_y, rect.max_x, rect.max_y,
                 p, q, rect.area) for rect, p, q in readings]
    out: List[float] = []
    for region in regions:
        area_r = region.area
        if not unpacked:
            if exact:
                out.append(0.0 if area_r <= 0.0
                           else min(area_r, universe_area) / universe_area)
            else:
                out.append(min(1.0, area_r / universe_area))
            continue
        rx0, ry0, rx1, ry1 = (region.min_x, region.min_y,
                              region.max_x, region.max_y)
        if exact:
            if area_r <= 0.0:
                out.append(0.0)
                continue
            area_r = min(area_r, universe_area)
            prior = area_r / universe_area
            outside = universe_area - area_r
            like_in = 1.0
            like_out = 1.0
            for x0, y0, x1, y1, p, q, a_i in unpacked:
                w = (x1 if x1 < rx1 else rx1) - (x0 if x0 > rx0 else rx0)
                h = (y1 if y1 < ry1 else ry1) - (y0 if y0 > ry0 else ry0)
                a_int = w * h if w > 0.0 and h > 0.0 else 0.0
                f_in = min(1.0, a_int / area_r)
                like_in *= p * f_in + q * (1.0 - f_in)
                if outside <= 0.0:
                    f_out = 0.0
                else:
                    f_out = min(1.0, max(0.0, (a_i - a_int) / outside))
                like_out *= p * f_out + q * (1.0 - f_out)
            numerator = like_in * prior
            denominator = numerator + like_out * (1.0 - prior)
            out.append(0.0 if denominator <= 0.0 else numerator / denominator)
        else:
            numerator = 1.0
            denominator_term = 1.0
            for x0, y0, x1, y1, p, q, a_i in unpacked:
                w = (x1 if x1 < rx1 else rx1) - (x0 if x0 > rx0 else rx0)
                h = (y1 if y1 < ry1 else ry1) - (y0 if y0 > ry0 else ry0)
                a_int = w * h if w > 0.0 and h > 0.0 else 0.0
                numerator *= p * a_int + q * (area_r - a_int)
                denominator_term *= (p * (a_i - a_int)
                                     + q * (universe_area - a_i + a_int))
            denominator = numerator + denominator_term
            out.append(0.0 if denominator <= 0.0 else numerator / denominator)
    return out


def support_confidence(supporters: Sequence[Tuple[float, float]]) -> float:
    """Confidence that a region's supporting sensors are all correct.

    ``supporters`` holds the (p, q) pairs of every reading whose
    rectangle contains the region.  The value is::

        1 / (1 + prod_i (q_i / p_i))

    i.e. the posterior that the consensus is a true detection rather
    than a joint false detection, with the area prior removed.  This is
    the number the Section 4.4 buckets grade: its boundaries are the
    deployed sensors' ``p`` values, and a single sensor's reading lands
    near its own ``p`` (exactly ``p`` when ``q = 1 - p``), reinforcing
    sensors push it up, and temporal degradation pulls it down.

    The paper's Eq. (7) (kept verbatim in
    :func:`eq7_region_probability`) answers a different question —
    "where in the building is the person" under a uniform prior — and
    for small regions in a large building its absolute value is
    necessarily tiny, which would make the paper's own probability
    buckets unreachable.  Separating the two lets applications
    threshold on sensor trustworthiness, as the paper's examples do,
    while region posteriors stay available for spatial reasoning.
    """
    if not supporters:
        return 0.0
    odds_against = 1.0
    for p, q in supporters:
        if not 0.0 <= p <= 1.0 or not 0.0 <= q <= 1.0:
            raise FusionError(f"({p}, {q}) is not a probability pair")
        if p <= 0.0:
            return 0.0
        odds_against *= q / p
    return 1.0 / (1.0 + odds_against)


@dataclass(frozen=True)
class Cell:
    """One atomic cell of the arrangement of reading rectangles.

    ``signature`` is the set of reading indices whose rectangle covers
    the cell; ``area`` is the cell's total area (cells with the same
    signature are merged).
    """

    signature: FrozenSet[int]
    area: float


class CellDecomposition:
    """The exact joint posterior over the arrangement of rectangles.

    The reading rectangles partition the universe into at most
    ``(2n+1)^2`` grid cells; merging cells by coverage signature gives
    the atomic regions of the arrangement.  Under the paper's model
    (conditional independence, uniform prior) the posterior weight of
    a cell with signature S is::

        w(S) = area(S)/area(U) * prod_{i in S} p_i * prod_{i not in S} q_i

    normalized over all cells (including the uncovered remainder).
    This is the ground-truth spatial probability distribution that
    both Eq. (7) and the exact region formula approximate at region
    granularity.
    """

    def __init__(self, readings: Sequence[WeightedRect],
                 universe: Rect) -> None:
        _validate(readings, universe.area)
        self.universe = universe
        self.readings = list(readings)
        self.cells = self._decompose()
        self._posterior = self._compute_posterior()

    def _decompose(self) -> List[Cell]:
        xs = {self.universe.min_x, self.universe.max_x}
        ys = {self.universe.min_y, self.universe.max_y}
        clipped: List[Optional[Rect]] = []
        for rect, _, _ in self.readings:
            c = rect.clipped_to(self.universe)
            clipped.append(c)
            if c is not None:
                xs.update((c.min_x, c.max_x))
                ys.update((c.min_y, c.max_y))
        xs_sorted = sorted(xs)
        ys_sorted = sorted(ys)
        # Kept for probability_in_rect, which re-slices this grid along
        # a query rectangle instead of re-decomposing from scratch.
        self._xs = xs_sorted
        self._ys = ys_sorted
        self._clipped = clipped
        areas: Dict[FrozenSet[int], float] = {}
        for x0, x1 in zip(xs_sorted, xs_sorted[1:]):
            if x1 <= x0:
                continue
            cx = (x0 + x1) / 2.0
            for y0, y1 in zip(ys_sorted, ys_sorted[1:]):
                if y1 <= y0:
                    continue
                cy = (y0 + y1) / 2.0
                signature = frozenset(
                    i for i, c in enumerate(clipped)
                    if c is not None
                    and c.min_x <= cx <= c.max_x
                    and c.min_y <= cy <= c.max_y
                )
                areas[signature] = areas.get(signature, 0.0) + \
                    (x1 - x0) * (y1 - y0)
        return [Cell(sig, area) for sig, area in areas.items()]

    def _compute_posterior(self) -> Dict[FrozenSet[int], float]:
        weights: Dict[FrozenSet[int], float] = {}
        total = 0.0
        for cell in self.cells:
            w = cell.area / self.universe.area
            for i, (_, p, q) in enumerate(self.readings):
                w *= p if i in cell.signature else q
            weights[cell.signature] = weights.get(cell.signature, 0.0) + w
            total += w
        if total <= 0.0:
            raise FusionError("zero total posterior weight")
        return {sig: w / total for sig, w in weights.items()}

    def probability_of_signature(self, signature: FrozenSet[int]) -> float:
        """Posterior probability that the person is in the cells covered
        by exactly the readings in ``signature``."""
        return self._posterior.get(frozenset(signature), 0.0)

    def probability_in_reading(self, index: int) -> float:
        """Posterior probability the person is inside reading ``index``'s
        rectangle (sum over all cells the rectangle covers)."""
        if not 0 <= index < len(self.readings):
            raise FusionError(f"no reading with index {index}")
        return sum(prob for sig, prob in self._posterior.items()
                   if index in sig)

    def probability_in_rect(self, region: Rect) -> float:
        """Posterior probability of an arbitrary rectangle.

        The stored grid lines are split along the query's edges so
        cells align exactly with it; the per-reading (p, q) factors
        are reused as-is.  This avoids rebuilding (and re-validating
        and re-normalizing) a whole augmented decomposition per query.
        """
        if region.area > self.universe.area + 1e-6:
            raise FusionError("query region larger than the universe")
        query = region.clipped_to(self.universe)
        xs = self._xs
        ys = self._ys
        if query is not None:
            if not (query.min_x in xs and query.max_x in xs):
                xs = sorted(set(xs) | {query.min_x, query.max_x})
            if not (query.min_y in ys and query.max_y in ys):
                ys = sorted(set(ys) | {query.min_y, query.max_y})
        clipped = self._clipped
        ps = [p for _, p, _ in self.readings]
        qs = [q for _, _, q in self.readings]
        u_area = self.universe.area
        total = 0.0
        inside = 0.0
        for x0, x1 in zip(xs, xs[1:]):
            if x1 <= x0:
                continue
            cx = (x0 + x1) / 2.0
            for y0, y1 in zip(ys, ys[1:]):
                if y1 <= y0:
                    continue
                cy = (y0 + y1) / 2.0
                w = (x1 - x0) * (y1 - y0) / u_area
                for i, c in enumerate(clipped):
                    if (c is not None
                            and c.min_x <= cx <= c.max_x
                            and c.min_y <= cy <= c.max_y):
                        w *= ps[i]
                    else:
                        w *= qs[i]
                total += w
                if (query is not None
                        and query.min_x <= cx <= query.max_x
                        and query.min_y <= cy <= query.max_y):
                    inside += w
        if total <= 0.0:
            raise FusionError("zero total posterior weight")
        return inside / total

    def map_signature(self) -> FrozenSet[int]:
        """The maximum-a-posteriori covered signature (ties: smaller
        area; never the empty signature unless nothing is covered)."""
        best: Optional[Tuple[float, float, Tuple[int, ...]]] = None
        best_sig: FrozenSet[int] = frozenset()
        area_by_sig: Dict[FrozenSet[int], float] = {}
        for cell in self.cells:
            area_by_sig[cell.signature] = \
                area_by_sig.get(cell.signature, 0.0) + cell.area
        for sig, prob in self._posterior.items():
            if not sig:
                continue
            key = (prob, -area_by_sig.get(sig, 0.0), tuple(sorted(sig)))
            if best is None or key > best:
                best = key
                best_sig = sig
        return best_sig
