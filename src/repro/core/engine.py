"""The fusion engine: readings in, spatial probability distribution out.

Ties together the lattice (Section 4.1.2), Equation (7), conflict
resolution (case 3) and probability classification (Section 4.4).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.classify import ProbabilityClassifier
from repro.core.conflict import ConflictResolver
from repro.core.estimate import LocationEstimate
from repro.core.fusion import (
    WeightedRect,
    batch_region_probabilities,
    eq7_region_probability,
    exact_region_probability,
    support_confidence,
)
from repro.core.lattice import _AREA_EPS, Box, LatticeNode, RegionLattice
from repro.core.reading import NormalizedReading
from repro.errors import FusionError
from repro.geometry import Rect

MODE_EQ7 = "eq7"
MODE_EXACT = "exact"


@dataclass
class FusionResult:
    """The fused spatial probability distribution for one object.

    Wraps the lattice with per-node probabilities, plus everything
    needed to answer follow-up region queries at the same timestamp.
    """

    object_id: str
    now: float
    universe: Rect
    readings: List[NormalizedReading]
    weighted: List[WeightedRect]
    lattice: RegionLattice
    winning_component: Set[int]
    discarded: Set[int]
    mode: str = MODE_EXACT
    # True when the lattice was evolved from the object's previous
    # closure instead of being closed from scratch.
    incremental: bool = field(default=False, compare=False)

    def _region_probability(self, region: Rect) -> float:
        active = [self.weighted[i] for i in sorted(self.winning_component)]
        if self.mode == MODE_EXACT:
            return exact_region_probability(region, active,
                                            self.universe.area)
        return eq7_region_probability(region, active, self.universe.area)

    def probability_of_region(self, region: Rect) -> float:
        """P(object in ``region``) — the region-based query of
        Section 4.2, computed against the surviving readings."""
        clipped = region.clipped_to(self.universe)
        if clipped is None:
            return 0.0
        return self._region_probability(clipped)

    def confidence_in_region(self, region: Rect) -> float:
        """Application-facing confidence that the object is in ``region``.

        The best minimal region's support confidence, scaled by how
        much of that region lies inside the query: fully containing the
        estimate yields the full confidence, partial overlap scales it
        down, disjoint regions yield zero.  This is what region-based
        notifications threshold against (Sections 4.3 and 4.4).
        """
        best = 0.0
        for node in self.minimal_regions():
            assert node.rect is not None
            if node.rect.area <= 0.0:
                fraction = 1.0 if region.contains_rect(node.rect) else 0.0
            else:
                fraction = node.rect.intersection_area(region) / node.rect.area
            best = max(best, node.confidence * fraction)
        return best

    def minimal_regions(self) -> List[LatticeNode]:
        """The parents of Bottom restricted to the winning component."""
        nodes = []
        for node in self.lattice.parents_of_bottom():
            if node.sources and node.sources <= self.winning_component:
                nodes.append(node)
        return nodes

    def best_minimal_region(self) -> Optional[LatticeNode]:
        """The minimal region with the highest support confidence (ties
        break to the smaller area, as smaller regions carry more
        information)."""
        candidates = self.minimal_regions()
        if not candidates:
            return None
        return max(candidates,
                   key=lambda n: (n.confidence, -n.area, n.node_id))

    def normalized_minimal_distribution(self) -> Dict[str, float]:
        """Probabilities over the minimal regions, normalized to sum 1.

        "The probabilities of all regions are finally normalized"
        (Section 4.1.2) — normalization is meaningful over the minimal
        (mutually non-containing) regions.
        """
        nodes = self.minimal_regions()
        total = sum(max(0.0, n.probability) for n in nodes)
        if total <= 0.0:
            return {n.node_id: 0.0 for n in nodes}
        return {n.node_id: max(0.0, n.probability) / total for n in nodes}


class FusionEngine:
    """Multi-sensor fusion with pluggable conflict rules and math mode.

    Args:
        resolver: conflict-resolution rule chain (defaults to the
            paper's rules).
        mode: ``"exact"`` (default — the Bayesian posterior derived the
            same way as the paper's Equations 1-4, which is what the
            paper's printed Equation 7 intends) or ``"eq7"`` (the
            printed Equation 7 verbatim; dimensionally inconsistent for
            two or more sensors, kept for reproduction benches — see
            :mod:`repro.core.fusion`).
        incremental: reuse each object's previous closure when
            consecutive ``fuse()`` calls differ by at most one added
            and one expired rectangle — the pipeline's steady-state
            shape.  The evolved lattice is identical to a from-scratch
            build (the closure of a set differing by one rectangle is
            derivable in one pass); property tests assert this.
        incremental_capacity: number of objects whose previous closure
            is retained (LRU).
    """

    def __init__(self, resolver: Optional[ConflictResolver] = None,
                 mode: str = MODE_EXACT, incremental: bool = True,
                 incremental_capacity: int = 256) -> None:
        if mode not in (MODE_EQ7, MODE_EXACT):
            raise FusionError(f"unknown fusion mode {mode!r}")
        if incremental_capacity <= 0:
            raise FusionError(
                f"incremental_capacity must be positive, "
                f"got {incremental_capacity}")
        self.resolver = resolver if resolver is not None else ConflictResolver()
        self.mode = mode
        self.incremental = incremental
        self._incremental_capacity = incremental_capacity
        # object_id -> (input box set, universe box, closure boxes)
        self._previous: "OrderedDict[str, Tuple[FrozenSet[Box], Box, List[Box]]]" = OrderedDict()
        self._previous_lock = threading.Lock()
        self.incremental_reuses = 0
        self.full_builds = 0

    def stats(self) -> Dict[str, int]:
        """Counters for the incremental fast path."""
        with self._previous_lock:
            return {
                "incremental_reuses": self.incremental_reuses,
                "full_builds": self.full_builds,
                "tracked_objects": len(self._previous),
            }

    def _build_lattice(self, object_id: str, rects: Sequence[Rect],
                       universe: Rect) -> Tuple[RegionLattice, bool]:
        """Build the containment lattice, evolving the object's
        previous closure when the input set changed by at most one
        added and one removed rectangle."""
        if not self.incremental:
            return RegionLattice(rects, universe), False
        universe_box = (universe.min_x, universe.min_y,
                        universe.max_x, universe.max_y)
        clipped = [r.clipped_to(universe) for r in rects]
        key: FrozenSet[Box] = frozenset(
            (c.min_x, c.min_y, c.max_x, c.max_y)
            for c in clipped if c is not None)
        with self._previous_lock:
            prev = self._previous.get(object_id)
        seed: Optional[List[Box]] = None
        if prev is not None and prev[1] == universe_box:
            prev_key, _, prev_boxes = prev
            added = key - prev_key
            removed = prev_key - key
            if len(added) <= 1 and len(removed) <= 1:
                boxes = prev_boxes
                if removed:
                    boxes = self._surviving_boxes(
                        prev_boxes, prev_key, next(iter(removed)), key)
                if added:
                    boxes = RegionLattice.closure_with_added(
                        boxes, next(iter(added)))
                seed = boxes
        lattice = RegionLattice(rects, universe, seed_boxes=seed)
        with self._previous_lock:
            self._previous[object_id] = (key, universe_box,
                                         lattice.closure_boxes())
            self._previous.move_to_end(object_id)
            while len(self._previous) > self._incremental_capacity:
                self._previous.popitem(last=False)
            if seed is not None:
                self.incremental_reuses += 1
            else:
                self.full_builds += 1
        return lattice, seed is not None

    @staticmethod
    def _surviving_boxes(prev_boxes: List[Box], prev_key: FrozenSet[Box],
                         removed_box: Box,
                         new_key: FrozenSet[Box]) -> List[Box]:
        """Closure boxes surviving the removal of one input rectangle.

        Mirrors :meth:`RegionLattice.closure_with_removed` but works
        from the stored box sets alone: a closure box survives iff it
        equals the meet of the remaining inputs that contain it (the
        sources-meet invariant), and eps-area boxes survive only as
        inputs.
        """
        remaining = [b for b in prev_key if b != removed_box]
        out: List[Box] = []
        for box in prev_boxes:
            if box == removed_box and box not in new_key:
                continue
            bx0, by0, bx1, by1 = box
            x0 = y0 = float("-inf")
            x1 = y1 = float("inf")
            contained_by_any = False
            for (ax0, ay0, ax1, ay1) in remaining:
                if ax0 <= bx0 and bx1 <= ax1 and ay0 <= by0 and by1 <= ay1:
                    contained_by_any = True
                    if ax0 > x0:
                        x0 = ax0
                    if ay0 > y0:
                        y0 = ay0
                    if ax1 < x1:
                        x1 = ax1
                    if ay1 < y1:
                        y1 = ay1
            if not contained_by_any:
                continue
            if (x0, y0, x1, y1) != box:
                continue
            if (bx1 - bx0) * (by1 - by0) <= _AREA_EPS \
                    and box not in new_key:
                continue
            out.append(box)
        return out

    # ------------------------------------------------------------------
    # Fusion
    # ------------------------------------------------------------------

    def fuse(self, object_id: str, readings: Sequence[NormalizedReading],
             universe: Rect, now: float) -> FusionResult:
        """Fuse readings for one object into a spatial distribution.

        Expired readings are dropped; disjoint components are resolved
        with the conflict rules; every lattice node's probability is
        computed with the configured formula over the winning
        component's readings.
        """
        fresh = [r for r in readings if not r.is_expired_at(now)]
        if not fresh:
            raise FusionError(
                f"no fresh readings for {object_id!r} at t={now}")
        for reading in fresh:
            if reading.object_id != object_id:
                raise FusionError(
                    f"reading from {reading.sensor_id!r} is for "
                    f"{reading.object_id!r}, not {object_id!r}")
        weighted = [
            (r.rect, *r.pq_at(now, universe.area)) for r in fresh
        ]
        lattice, reused = self._build_lattice(
            object_id, [r.rect for r in fresh], universe)
        components = lattice.components()
        if len(components) > 1:
            winner_index = self.resolver.resolve(
                components, fresh, now, universe.area)
        else:
            winner_index = 0
        winning = components[winner_index]
        discarded = set(range(len(fresh))) - winning

        result = FusionResult(
            object_id=object_id,
            now=now,
            universe=universe,
            readings=list(fresh),
            weighted=weighted,
            lattice=lattice,
            winning_component=winning,
            discarded=discarded,
            mode=self.mode,
            incremental=reused,
        )
        active = [weighted[i] for i in sorted(winning)]
        region_nodes = lattice.region_nodes()
        probabilities = batch_region_probabilities(
            [node.rect for node in region_nodes], active, universe.area,
            exact=(self.mode == MODE_EXACT))
        for node, probability in zip(region_nodes, probabilities):
            node.probability = probability
            supporters = [
                (weighted[i][1], weighted[i][2])
                for i in node.sources if i in winning
            ]
            node.confidence = support_confidence(supporters)
        top = lattice.node("Top")
        top.probability = 1.0
        top.confidence = 1.0
        bottom = lattice.node("Bottom")
        bottom.probability = 0.0
        bottom.confidence = 0.0
        return result

    # ------------------------------------------------------------------
    # Point estimates
    # ------------------------------------------------------------------

    def point_estimate(self, result: FusionResult,
                       classifier: ProbabilityClassifier
                       ) -> LocationEstimate:
        """Reduce a distribution to the single-value answer of
        Section 4.2: the best parent-of-Bottom after conflict
        resolution."""
        node = result.best_minimal_region()
        if node is None or node.rect is None:
            raise FusionError(
                f"no minimal region for {result.object_id!r}")
        sources = tuple(
            result.readings[i].sensor_id for i in sorted(node.sources))
        moving = any(result.readings[i].moving for i in node.sources)
        confidence = min(1.0, max(0.0, node.confidence))
        posterior = min(1.0, max(0.0, node.probability))
        return LocationEstimate(
            object_id=result.object_id,
            rect=node.rect,
            probability=confidence,
            bucket=classifier.classify(confidence),
            time=result.now,
            sources=sources,
            moving=moving,
            posterior=posterior,
        )
