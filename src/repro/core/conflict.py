"""Conflict resolution for disjoint sensor readings (Section 4.1.2, case 3).

"Disjoint rectangles imply that the sensors are giving conflicting
information.  This means that one of the sensor readings is wrong and
should be discarded.  We use a set of rules to decide which the wrong
reading is."

The resolver works on *components*: groups of readings whose
rectangles (transitively) intersect.  Within a component sensors
reinforce one another; across components they conflict.  Rules are
applied in order until a single component survives:

1. :class:`MovingRectangleRule` — "If either of the rectangles is
   moving with time, then take that reading and discard the other
   one."
2. :class:`HighestProbabilityRule` — "else, if P(person_B | s2_B) <
   P(person_A | s1_A), then discard reading B" — keep the component
   whose best single-sensor probability (Equation 5) is highest.
3. :class:`FreshestReadingRule` — an extra deterministic tiebreak by
   newest detection time, so resolution is total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Set

from repro.core.pairwise import eq5_single_sensor
from repro.core.reading import NormalizedReading
from repro.errors import ConflictError


class ConflictRule(Protocol):
    """One rule: narrow the candidate components; return the survivors.

    A rule returns a non-empty subset of ``candidates`` (indices into
    the component list).  Returning all candidates means the rule
    could not discriminate.
    """

    def filter(self, components: Sequence[Set[int]],
               readings: Sequence[NormalizedReading],
               candidates: List[int], now: float,
               universe_area: float) -> List[int]:
        ...


@dataclass(frozen=True)
class MovingRectangleRule:
    """Prefer components containing a moving rectangle.

    "A moving rectangle implies that the person is carrying a location
    device ... and thus has a greater chance of being valid than a
    stationary rectangle (which may occur if the person has left his
    badge in his office)."
    """

    def filter(self, components: Sequence[Set[int]],
               readings: Sequence[NormalizedReading],
               candidates: List[int], now: float,
               universe_area: float) -> List[int]:
        moving = [c for c in candidates
                  if any(readings[i].moving for i in components[c])]
        return moving if moving else candidates


@dataclass(frozen=True)
class HighestProbabilityRule:
    """Prefer the component with the best single-sensor probability.

    Each reading is scored with Equation (5) using its temporally
    degraded ``p``; a component scores as its best reading.
    """

    def filter(self, components: Sequence[Set[int]],
               readings: Sequence[NormalizedReading],
               candidates: List[int], now: float,
               universe_area: float) -> List[int]:
        def component_score(c: int) -> float:
            best = 0.0
            for i in components[c]:
                reading = readings[i]
                p, q = reading.pq_at(now, universe_area)
                area = min(reading.rect.area, universe_area)
                best = max(best, eq5_single_sensor(area, universe_area, p, q))
            return best

        scores = {c: component_score(c) for c in candidates}
        top = max(scores.values())
        return [c for c in candidates if scores[c] >= top - 1e-12]


@dataclass(frozen=True)
class FreshestReadingRule:
    """Tiebreak: prefer the component with the newest reading."""

    def filter(self, components: Sequence[Set[int]],
               readings: Sequence[NormalizedReading],
               candidates: List[int], now: float,
               universe_area: float) -> List[int]:
        def newest(c: int) -> float:
            return max(readings[i].time for i in components[c])

        times = {c: newest(c) for c in candidates}
        top = max(times.values())
        survivors = [c for c in candidates if times[c] >= top]
        return survivors[:1] if survivors else candidates[:1]


DEFAULT_RULES: List[ConflictRule] = [
    MovingRectangleRule(),
    HighestProbabilityRule(),
    FreshestReadingRule(),
]


class ConflictResolver:
    """Applies rules in order until one component remains."""

    def __init__(self, rules: Sequence[ConflictRule] = ()) -> None:
        self.rules: List[ConflictRule] = list(rules) or list(DEFAULT_RULES)

    def resolve(self, components: Sequence[Set[int]],
                readings: Sequence[NormalizedReading], now: float,
                universe_area: float) -> int:
        """The index of the winning component."""
        if not components:
            raise ConflictError("no components to resolve")
        candidates = list(range(len(components)))
        if len(candidates) == 1:
            return candidates[0]
        for rule in self.rules:
            candidates = rule.filter(components, readings, candidates,
                                     now, universe_area)
            if not candidates:
                raise ConflictError(
                    f"rule {type(rule).__name__} discarded every component")
            if len(candidates) == 1:
                return candidates[0]
        # Rules exhausted with several survivors: deterministic fallback.
        return min(candidates)
