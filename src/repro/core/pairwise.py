"""The paper's worked two-sensor fusion formulas, verbatim.

Section 4.1.2 derives closed forms for the three geometric cases of
two sensor rectangles (its Figures 2-4):

* Equation (4): one rectangle contains the other — P(person_B | s1_A, s2_B).
* Equation (5): a single sensor — P(person_B | s2_B).
* Equation (6): intersecting rectangles — P(person_C | s1_A, s2_B)
  where C = A ∩ B.

These are kept verbatim (including the paper's own approximations) so
the benchmark reproducing Figures 2-4 evaluates exactly what the paper
printed.  The general Equation (7) lives in :mod:`repro.core.fusion`.

A note on Equation (6) as printed: its numerator is linear in area
(``p1*p2*aC``) while its denominator's second term is a product of two
area-scale factors (~``aU^2``), so at building scale the printed value
is vanishingly small and *decreases* as sensors agree — contradicting
the reinforcement property the paper proves for Equation (4).
Re-deriving the intersection case the same way as the paper's
Equations (1)-(3) shows the printed form is missing a ``1/(aU - aC)``
normalization on that term; :func:`eq6_corrected` applies it and then
agrees exactly with :func:`repro.core.fusion.exact_region_probability`.
Both forms are exposed: ``eq6_intersection`` reproduces the paper,
``eq6_corrected`` is what the derivation supports.
"""

from __future__ import annotations

from repro.errors import FusionError
from repro.geometry import Rect


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FusionError(f"{name}={value} is not a probability")


def eq4_containment(area_a: float, area_b: float, area_u: float,
                    p1: float, q1: float, p2: float, q2: float) -> float:
    """Equation (4): sensor 1 says inner rect A, sensor 2 says outer B.

    Returns P(person_B | s1_A, s2_B)::

               [p1*aA + q1*(aB - aA)] * p2
        ---------------------------------------------
        [p1*aA + q1*(aB - aA)] * p2 + q1*q2*(aU - aB)
    """
    for name, v in (("p1", p1), ("q1", q1), ("p2", p2), ("q2", q2)):
        _check_prob(name, v)
    if not 0.0 <= area_a <= area_b <= area_u:
        raise FusionError(
            f"need area_A <= area_B <= area_U, got {area_a}, {area_b}, {area_u}")
    numerator = (p1 * area_a + q1 * (area_b - area_a)) * p2
    denominator = numerator + q1 * q2 * (area_u - area_b)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def eq5_single_sensor(area_b: float, area_u: float,
                      p2: float, q2: float) -> float:
    """Equation (5): only sensor 2 detected the person, in rect B.

    Returns P(person_B | s2_B)::

                 aB * p2
        --------------------------
        aB * p2 + q2 * (aU - aB)
    """
    _check_prob("p2", p2)
    _check_prob("q2", q2)
    if not 0.0 <= area_b <= area_u:
        raise FusionError(f"need area_B <= area_U, got {area_b}, {area_u}")
    numerator = area_b * p2
    denominator = numerator + q2 * (area_u - area_b)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def eq6_intersection(area_a: float, area_b: float, area_c: float,
                     area_u: float, p1: float, q1: float,
                     p2: float, q2: float) -> float:
    """Equation (6): rectangles A and B intersect in C = A ∩ B.

    Returns P(person_C | s1_A, s2_B)::

                              p1*p2*aC
        ------------------------------------------------------------
        p1*p2*aC + [p1*(aA-aC) + q1*(aU-aA)]*[p2*(aB-aC) + q2*(aU-aB)]
    """
    for name, v in (("p1", p1), ("q1", q1), ("p2", p2), ("q2", q2)):
        _check_prob(name, v)
    if not (0.0 <= area_c <= min(area_a, area_b)
            and max(area_a, area_b) <= area_u):
        raise FusionError("inconsistent areas for the intersection case")
    numerator = p1 * p2 * area_c
    denominator = numerator + (
        (p1 * (area_a - area_c) + q1 * (area_u - area_a))
        * (p2 * (area_b - area_c) + q2 * (area_u - area_b))
    )
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def eq6_corrected(area_a: float, area_b: float, area_c: float,
                  area_u: float, p1: float, q1: float,
                  p2: float, q2: float) -> float:
    """Equation (6) with the missing ``1/(aU - aC)`` normalization.

    Derived exactly like the paper's Equations (1)-(3); equals the
    exact Bayesian posterior for the intersection region.
    """
    for name, v in (("p1", p1), ("q1", q1), ("p2", p2), ("q2", q2)):
        _check_prob(name, v)
    if not (0.0 <= area_c <= min(area_a, area_b)
            and max(area_a, area_b) <= area_u):
        raise FusionError("inconsistent areas for the intersection case")
    numerator = p1 * p2 * area_c
    outside = area_u - area_c
    if outside <= 0.0:
        return 1.0 if numerator > 0.0 else 0.0
    denominator = numerator + (
        (p1 * (area_a - area_c) + q1 * (area_u - area_a))
        * (p2 * (area_b - area_c) + q2 * (area_u - area_b))
        / outside
    )
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def eq4_from_rects(inner: Rect, outer: Rect, universe: Rect,
                   p1: float, q1: float, p2: float, q2: float) -> float:
    """Equation (4) computed from geometry (inner must lie inside outer)."""
    if not outer.contains_rect(inner):
        raise FusionError("eq4 requires the outer rect to contain the inner")
    return eq4_containment(inner.area, outer.area, universe.area,
                           p1, q1, p2, q2)


def eq6_from_rects(rect_a: Rect, rect_b: Rect, universe: Rect,
                   p1: float, q1: float, p2: float, q2: float) -> float:
    """Equation (6) computed from geometry (rects must overlap)."""
    overlap = rect_a.intersection_area(rect_b)
    if overlap <= 0.0:
        raise FusionError("eq6 requires the rectangles to overlap")
    return eq6_intersection(rect_a.area, rect_b.area, overlap,
                            universe.area, p1, q1, p2, q2)
