"""The containment lattice of sensor rectangles (paper Section 4.1.2).

"In order to efficiently combine different sensor readings, we
construct a lattice of rectangles, where the lattice relationship is
containment.  The rectangles in the lattice are both sensor rectangles
as well as any new rectangle regions that are formed due to the
intersection of two rectangles."

Nodes are the universe (Top), every distinct sensor rectangle, every
non-empty intersection region (closed to a fixpoint, so triple-wise
and deeper intersections appear too), and Bottom (the empty region).
Edges form the Hasse diagram of geometric containment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import FusionError
from repro.geometry import Rect

TOP = "Top"
BOTTOM = "Bottom"

_AREA_EPS = 1e-9


@dataclass
class LatticeNode:
    """One lattice node.

    Attributes:
        node_id: "Top", "Bottom", or "R<k>" in creation order.
        rect: the node's region; ``None`` only for Bottom.
        sources: indices (into the input rect list) of every input
            rectangle that fully contains this region — the sensors
            whose readings directly support it.
        parents: ids of covering nodes (immediately larger regions).
        children: ids of covered nodes (immediately smaller regions).
        probability: the region posterior (paper Eq. 7), filled in by
            the fusion engine.
        confidence: the support confidence (area-prior-free; see
            :func:`repro.core.fusion.support_confidence`), filled in by
            the fusion engine.
    """

    node_id: str
    rect: Optional[Rect]
    sources: FrozenSet[int] = frozenset()
    parents: Set[str] = field(default_factory=set)
    children: Set[str] = field(default_factory=set)
    probability: float = float("nan")
    confidence: float = float("nan")

    @property
    def is_top(self) -> bool:
        return self.node_id == TOP

    @property
    def is_bottom(self) -> bool:
        return self.node_id == BOTTOM

    @property
    def area(self) -> float:
        return self.rect.area if self.rect is not None else 0.0


class RegionLattice:
    """The lattice over a set of input rectangles within a universe.

    Args:
        rects: the sensor rectangles (one per reading, input order is
            preserved — ``sources`` indexes into this list).
        universe: the Top region ``U`` (the whole building's floor).
        max_nodes: safety cap; pathological overlap patterns can
            generate exponentially many intersection regions.
    """

    def __init__(self, rects: Sequence[Rect], universe: Rect,
                 max_nodes: int = 4096) -> None:
        for i, rect in enumerate(rects):
            if not universe.intersects(rect):
                raise FusionError(
                    f"input rectangle {i} lies outside the universe")
        self.universe = universe
        self.input_rects = [r.clipped_to(universe) for r in rects]
        self._nodes: Dict[str, LatticeNode] = {}
        self._by_rect: Dict[Tuple[float, float, float, float], str] = {}
        self._counter = 0
        self._max_nodes = max_nodes
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _key(self, rect: Rect) -> Tuple[float, float, float, float]:
        return (rect.min_x, rect.min_y, rect.max_x, rect.max_y)

    def _build(self) -> None:
        self._nodes[TOP] = LatticeNode(TOP, self.universe)
        self._nodes[BOTTOM] = LatticeNode(BOTTOM, None)
        self._by_rect[self._key(self.universe)] = TOP

        # Seed with the (deduplicated) input rectangles.
        for rect in self.input_rects:
            assert rect is not None
            self._intern(rect)

        # Close under pairwise intersection until a fixpoint.
        frontier = [n for n in self._region_ids()]
        while frontier:
            new_ids: List[str] = []
            region_ids = self._region_ids()
            for a_id in frontier:
                a = self._nodes[a_id].rect
                assert a is not None
                for b_id in region_ids:
                    if b_id == a_id:
                        continue
                    b = self._nodes[b_id].rect
                    assert b is not None
                    overlap = a.intersection(b)
                    if overlap is None or overlap.area <= _AREA_EPS:
                        continue
                    if self._key(overlap) not in self._by_rect:
                        new_ids.append(self._intern(overlap))
            frontier = new_ids

        self._assign_sources()
        self._link_hasse()

    def _intern(self, rect: Rect) -> str:
        key = self._key(rect)
        existing = self._by_rect.get(key)
        if existing is not None:
            return existing
        if len(self._nodes) >= self._max_nodes:
            raise FusionError(
                f"lattice exceeded {self._max_nodes} nodes; too many "
                "overlapping sensor rectangles")
        self._counter += 1
        node_id = f"R{self._counter}"
        self._nodes[node_id] = LatticeNode(node_id, rect)
        self._by_rect[key] = node_id
        return node_id

    def _region_ids(self) -> List[str]:
        return [nid for nid in self._nodes if nid not in (TOP, BOTTOM)]

    def _assign_sources(self) -> None:
        for node_id in self._region_ids():
            node = self._nodes[node_id]
            assert node.rect is not None
            node.sources = frozenset(
                i for i, rect in enumerate(self.input_rects)
                if rect is not None and rect.contains_rect(node.rect)
            )

    def _link_hasse(self) -> None:
        """Containment cover edges: parent strictly contains child with
        no intermediate node between them."""
        ids = self._region_ids()
        rects = {nid: self._nodes[nid].rect for nid in ids}
        # strict containment: container strictly larger and contains.
        contains: Dict[str, Set[str]] = {nid: set() for nid in ids}
        for a in ids:
            ra = rects[a]
            assert ra is not None
            for b in ids:
                if a == b:
                    continue
                rb = rects[b]
                assert rb is not None
                if ra.contains_rect(rb) and ra.area > rb.area + _AREA_EPS:
                    contains[a].add(b)
        for a in ids:
            below = contains[a]
            covered = {
                b for b in below
                if not any(b in contains[c] for c in below if c != b)
            }
            for b in covered:
                self._nodes[a].children.add(b)
                self._nodes[b].parents.add(a)
        # Hook maximal regions under Top and minimal regions above Bottom.
        for nid in ids:
            node = self._nodes[nid]
            if not node.parents:
                node.parents.add(TOP)
                self._nodes[TOP].children.add(nid)
            if not node.children:
                node.children.add(BOTTOM)
                self._nodes[BOTTOM].parents.add(nid)
        if not ids:
            self._nodes[TOP].children.add(BOTTOM)
            self._nodes[BOTTOM].parents.add(TOP)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: str) -> LatticeNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise FusionError(f"unknown lattice node {node_id!r}") from None

    def nodes(self) -> List[LatticeNode]:
        return list(self._nodes.values())

    def region_nodes(self) -> List[LatticeNode]:
        """All nodes except Top and Bottom."""
        return [self._nodes[nid] for nid in self._region_ids()]

    def node_for_rect(self, rect: Rect) -> Optional[LatticeNode]:
        node_id = self._by_rect.get(self._key(rect))
        return self._nodes[node_id] if node_id is not None else None

    def parents_of_bottom(self) -> List[LatticeNode]:
        """The minimal regions — "the parents of the Bottom node (since
        these give the smallest areas)" (Section 4.2)."""
        return [self._nodes[nid] for nid in self._nodes[BOTTOM].parents
                if nid != TOP]

    def sensor_node_ids(self) -> List[str]:
        """Node ids corresponding to the input rectangles, input order."""
        out: List[str] = []
        for rect in self.input_rects:
            assert rect is not None
            out.append(self._by_rect[self._key(rect)])
        return out

    def intersection_node_ids(self) -> List[str]:
        """Nodes created purely by intersection (the D, E, F, G of Fig. 6)."""
        sensor_ids = set(self.sensor_node_ids())
        return [nid for nid in self._region_ids() if nid not in sensor_ids]

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def components(self) -> List[Set[int]]:
        """Connected components of input rectangles by intersection.

        Two readings in different components are *disjoint* evidence —
        the conflict case (Section 4.1.2, case 3).  Indices refer to
        the input rect list.
        """
        n = len(self.input_rects)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        for i in range(n):
            ri = self.input_rects[i]
            assert ri is not None
            for j in range(i + 1, n):
                rj = self.input_rects[j]
                assert rj is not None
                if ri.intersection_area(rj) > _AREA_EPS:
                    union(i, j)
        groups: Dict[int, Set[int]] = {}
        for i in range(n):
            groups.setdefault(find(i), set()).add(i)
        return sorted(groups.values(), key=lambda s: min(s))

    def to_dot(self, label_probability: bool = True) -> str:
        """The lattice as Graphviz DOT text (debugging/figures).

        Renders the Hasse diagram top-down: Top above the maximal
        sensor rectangles, intersections below, Bottom at the base —
        the orientation of the paper's Figure 6.
        """
        lines = ["digraph lattice {", "  rankdir=TB;",
                 '  node [shape=box, fontsize=10];']
        for node in self._nodes.values():
            attributes = [f'label="{node.node_id}']
            if node.rect is not None and not node.is_top:
                attributes[0] += f"\\narea={node.area:.0f}"
            if label_probability and node.probability == node.probability:
                attributes[0] += f"\\nP={node.probability:.3f}"
            attributes[0] += '"'
            if node.is_top or node.is_bottom:
                attributes.append("style=bold")
            lines.append(f'  "{node.node_id}" [{", ".join(attributes)}];')
        for node in self._nodes.values():
            for child_id in sorted(node.children):
                lines.append(f'  "{node.node_id}" -> "{child_id}";')
        lines.append("}")
        return "\n".join(lines)

    def check_invariants(self) -> None:
        """Assert lattice structural invariants (used by property tests)."""
        for node in self._nodes.values():
            for parent_id in node.parents:
                parent = self._nodes[parent_id]
                assert node.node_id in parent.children, "asymmetric edge"
                if node.rect is not None and parent.rect is not None:
                    assert parent.rect.contains_rect(node.rect) or \
                        parent.is_top, "parent does not contain child"
            for child_id in node.children:
                child = self._nodes[child_id]
                assert node.node_id in child.parents, "asymmetric edge"
        # Every region is reachable downward from Top.
        seen: Set[str] = set()
        stack = [TOP]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self._nodes[nid].children)
        assert seen == set(self._nodes), "unreachable lattice nodes"
