"""The containment lattice of sensor rectangles (paper Section 4.1.2).

"In order to efficiently combine different sensor readings, we
construct a lattice of rectangles, where the lattice relationship is
containment.  The rectangles in the lattice are both sensor rectangles
as well as any new rectangle regions that are formed due to the
intersection of two rectangles."

Nodes are the universe (Top), every distinct sensor rectangle, every
non-empty intersection region (closed to a fixpoint, so triple-wise
and deeper intersections appear too), and Bottom (the empty region).
Edges form the Hasse diagram of geometric containment.

This module is the fusion hot path, so construction is engineered
around three ideas (see ``docs/PERF.md``):

* the intersection closure processes each unordered node pair exactly
  once, pruning candidates through a min-x-sorted interval index
  instead of rescanning every node per fixpoint round;
* Hasse cover edges come from an area-sorted minimal-container
  computation instead of the cubic covered-set filter;
* pairwise input overlaps discovered during construction are memoized
  so :meth:`components` (and source assignment) never redo geometry.

Because every closure node equals the intersection of exactly the
input rectangles that contain it, a closed node set can be *evolved*
when one input is added or removed without re-running the fixpoint —
the basis of the fusion engine's incremental mode.  The original
quadratic-rescan builder survives as :meth:`build_reference`; property
tests assert the two produce identical lattices.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import FusionError
from repro.geometry import Rect

TOP = "Top"
BOTTOM = "Bottom"

_AREA_EPS = 1e-9

# A rectangle reduced to its hashable corner tuple (the intern key).
Box = Tuple[float, float, float, float]


@dataclass
class LatticeNode:
    """One lattice node.

    Attributes:
        node_id: "Top", "Bottom", or "R<k>" in creation order.
        rect: the node's region; ``None`` only for Bottom.
        sources: indices (into the input rect list) of every input
            rectangle that fully contains this region — the sensors
            whose readings directly support it.
        parents: ids of covering nodes (immediately larger regions).
        children: ids of covered nodes (immediately smaller regions).
        probability: the region posterior (paper Eq. 7), filled in by
            the fusion engine.
        confidence: the support confidence (area-prior-free; see
            :func:`repro.core.fusion.support_confidence`), filled in by
            the fusion engine.
    """

    node_id: str
    rect: Optional[Rect]
    sources: FrozenSet[int] = frozenset()
    parents: Set[str] = field(default_factory=set)
    children: Set[str] = field(default_factory=set)
    probability: float = float("nan")
    confidence: float = float("nan")

    @property
    def is_top(self) -> bool:
        return self.node_id == TOP

    @property
    def is_bottom(self) -> bool:
        return self.node_id == BOTTOM

    @property
    def area(self) -> float:
        return self.rect.area if self.rect is not None else 0.0


class RegionLattice:
    """The lattice over a set of input rectangles within a universe.

    Args:
        rects: the sensor rectangles (one per reading, input order is
            preserved — ``sources`` indexes into this list).
        universe: the Top region ``U`` (the whole building's floor).
        max_nodes: safety cap; pathological overlap patterns can
            generate exponentially many intersection regions.
        seed_boxes: a pre-computed intersection closure of ``rects``
            (corner tuples).  When given, the fixpoint scan is skipped
            entirely and the boxes are interned directly — the
            incremental-evolution fast path.  Callers are responsible
            for the set actually being closed; the fusion engine only
            derives seeds through :meth:`closure_with_added` /
            :meth:`closure_with_removed`, which preserve closedness.
    """

    def __init__(self, rects: Sequence[Rect], universe: Rect,
                 max_nodes: int = 4096,
                 seed_boxes: Optional[Sequence[Box]] = None) -> None:
        for i, rect in enumerate(rects):
            if not universe.intersects(rect):
                raise FusionError(
                    f"input rectangle {i} lies outside the universe")
        self.universe = universe
        self.input_rects = [r.clipped_to(universe) for r in rects]
        self._nodes: Dict[str, LatticeNode] = {}
        self._by_rect: Dict[Box, str] = {}
        self._counter = 0
        self._max_nodes = max_nodes
        # (i, j) input-index pairs (i < j) with overlap area > eps,
        # discovered once during construction; components() reuses
        # them instead of recomputing pairwise intersections.
        self._overlap_pairs: Optional[Set[Tuple[int, int]]] = None
        self._build(seed_boxes)

    # ------------------------------------------------------------------
    # Construction (optimized path)
    # ------------------------------------------------------------------

    def _key(self, rect: Rect) -> Box:
        return (rect.min_x, rect.min_y, rect.max_x, rect.max_y)

    def _build(self, seed_boxes: Optional[Sequence[Box]]) -> None:
        self._nodes[TOP] = LatticeNode(TOP, self.universe)
        self._nodes[BOTTOM] = LatticeNode(BOTTOM, None)
        self._by_rect[self._key(self.universe)] = TOP

        # Seed with the (deduplicated) input rectangles.
        for rect in self.input_rects:
            assert rect is not None
            self._intern(rect)

        self._memo_input_overlaps()
        if seed_boxes is None:
            self._close_under_intersection()
        else:
            for box in seed_boxes:
                if box not in self._by_rect:
                    self._intern(Rect(*box))

        self._link_hasse()
        self._assign_sources()

    def _intern(self, rect: Rect) -> str:
        key = self._key(rect)
        existing = self._by_rect.get(key)
        if existing is not None:
            return existing
        if len(self._nodes) >= self._max_nodes:
            raise FusionError(
                f"lattice exceeded {self._max_nodes} nodes; too many "
                "overlapping sensor rectangles")
        self._counter += 1
        node_id = f"R{self._counter}"
        self._nodes[node_id] = LatticeNode(node_id, rect)
        self._by_rect[key] = node_id
        return node_id

    def _region_ids(self) -> List[str]:
        return [nid for nid in self._nodes if nid not in (TOP, BOTTOM)]

    def _memo_input_overlaps(self) -> None:
        """Record which input pairs overlap with positive area.

        One sorted sweep over the input rectangles: sorted by min-x,
        the inner scan stops at the first rectangle starting past the
        outer one's right edge.  Overlap areas are computed inline so
        no per-pair :class:`Rect` objects (or method calls) are made.
        """
        pairs: Set[Tuple[int, int]] = set()
        order = sorted(range(len(self.input_rects)),
                       key=lambda i: self.input_rects[i].min_x)
        rects = self.input_rects
        for pos, i in enumerate(order):
            ri = rects[i]
            assert ri is not None
            for j in order[pos + 1:]:
                rj = rects[j]
                assert rj is not None
                if rj.min_x > ri.max_x:
                    break  # sorted by min_x: nothing further overlaps
                w = min(ri.max_x, rj.max_x) - max(ri.min_x, rj.min_x)
                h = min(ri.max_y, rj.max_y) - max(ri.min_y, rj.min_y)
                if w > 0.0 and h > 0.0 and w * h > _AREA_EPS:
                    pairs.add((i, j) if i < j else (j, i))
        self._overlap_pairs = pairs

    def _close_under_intersection(self) -> None:
        """Close the region set under pairwise intersection.

        Each node, when first processed, is intersected against every
        node created before it — so every unordered pair is examined
        exactly once, unlike the fixpoint-with-full-rescan it replaces.
        A min-x-sorted index prunes the candidates: rectangles whose
        x-interval cannot reach the current node are never touched.
        """
        boxes: List[Box] = []          # creation order
        for nid in self._region_ids():
            rect = self._nodes[nid].rect
            assert rect is not None
            boxes.append((rect.min_x, rect.min_y, rect.max_x, rect.max_y))

        # Interval index over *processed* nodes only, as two parallel
        # sorted-by-min-x lists (floats bisect fast; boxes in step).
        idx_min_x: List[float] = []
        idx_boxes: List[Box] = []
        by_rect = self._by_rect
        cursor = 0  # nodes before `cursor` have been processed
        while cursor < len(boxes):
            box = boxes[cursor]
            ax0, ay0, ax1, ay1 = box
            # Candidates: processed nodes starting at or left of this
            # node's right edge (others cannot overlap in x).
            hi = bisect_right(idx_min_x, ax1)
            for pos in range(hi):
                bx0, by0, bx1, by1 = idx_boxes[pos]
                ix0 = ax0 if ax0 > bx0 else bx0
                ix1 = ax1 if ax1 < bx1 else bx1
                w = ix1 - ix0
                if w <= 0.0:
                    continue
                iy0 = ay0 if ay0 > by0 else by0
                iy1 = ay1 if ay1 < by1 else by1
                h = iy1 - iy0
                if h <= 0.0 or w * h <= _AREA_EPS:
                    continue
                key = (ix0, iy0, ix1, iy1)
                if key not in by_rect:
                    self._intern(Rect(ix0, iy0, ix1, iy1))
                    boxes.append(key)
            at = bisect_right(idx_min_x, ax0)
            idx_min_x.insert(at, ax0)
            idx_boxes.insert(at, box)
            cursor += 1

    def _link_hasse(self) -> None:
        """Containment cover edges via area-sorted minimal containers.

        For each region node (ascending by area) the strict containers
        are scanned largest-area-last; a container is a cover unless it
        contains an already-accepted (hence smaller) cover —
        transitivity makes checking accepted covers sufficient.
        """
        ids = self._region_ids()
        entries: List[Tuple[float, str, Box]] = []
        for nid in ids:
            rect = self._nodes[nid].rect
            assert rect is not None
            entries.append((rect.area, nid,
                            (rect.min_x, rect.min_y, rect.max_x,
                             rect.max_y)))
        entries.sort(key=lambda e: (e[0], e[1]))
        area_list = [e[0] for e in entries]       # ascending, bisectable
        box_list = [e[2] for e in entries]
        id_list = [e[1] for e in entries]
        count = len(entries)

        for pos in range(count):
            bx0, by0, bx1, by1 = box_list[pos]
            # Strictness: only strictly-larger areas can cover; bisect
            # skips the whole run of equal/near-equal areas at once.
            start = bisect_right(area_list, area_list[pos] + _AREA_EPS)
            covers: List[Box] = []
            b = id_list[pos]
            b_node = self._nodes[b]
            for apos in range(start, count):
                ax0, ay0, ax1, ay1 = box_list[apos]
                if ax0 <= bx0 and bx1 <= ax1 and ay0 <= by0 and by1 <= ay1:
                    contains_cover = False
                    for dx0, dy0, dx1, dy1 in covers:
                        if ax0 <= dx0 and dx1 <= ax1 \
                                and ay0 <= dy0 and dy1 <= ay1:
                            contains_cover = True
                            break
                    if contains_cover:
                        continue
                    covers.append((ax0, ay0, ax1, ay1))
                    a = id_list[apos]
                    self._nodes[a].children.add(b)
                    b_node.parents.add(a)

        # Hook maximal regions under Top and minimal regions above Bottom.
        for nid in ids:
            node = self._nodes[nid]
            if not node.parents:
                node.parents.add(TOP)
                self._nodes[TOP].children.add(nid)
            if not node.children:
                node.children.add(BOTTOM)
                self._nodes[BOTTOM].parents.add(nid)
        if not ids:
            self._nodes[TOP].children.add(BOTTOM)
            self._nodes[BOTTOM].parents.add(TOP)

    def _assign_sources(self) -> None:
        """Sources = inputs whose rectangle contains the node.

        Inline corner comparisons over the (few) input rectangles — no
        per-node :meth:`Rect.contains_rect` calls, no recomputed
        intersections.
        """
        inputs = [(r.min_x, r.min_y, r.max_x, r.max_y)
                  for r in self.input_rects if r is not None]
        indexed = list(enumerate(inputs))
        for node_id in self._region_ids():
            rect = self._nodes[node_id].rect
            assert rect is not None
            nx0, ny0, nx1, ny1 = (rect.min_x, rect.min_y,
                                  rect.max_x, rect.max_y)
            self._nodes[node_id].sources = frozenset(
                i for i, (x0, y0, x1, y1) in indexed
                if x0 <= nx0 and nx1 <= x1 and y0 <= ny0 and ny1 <= y1
            )

    # ------------------------------------------------------------------
    # Incremental evolution (the fusion engine's steady-state path)
    # ------------------------------------------------------------------

    def closure_boxes(self) -> List[Box]:
        """Every region node's corner tuple, in creation order."""
        out: List[Box] = []
        for nid in self._region_ids():
            rect = self._nodes[nid].rect
            assert rect is not None
            out.append((rect.min_x, rect.min_y, rect.max_x, rect.max_y))
        return out

    @staticmethod
    def closure_with_added(boxes: Sequence[Box], new_box: Box) -> List[Box]:
        """Evolve a closed box set after adding one rectangle.

        Because the existing set is closed, one pass suffices:
        ``(r∩a)∩(r∩b) = r∩(a∩b)`` and ``a∩b`` is already present, so
        the only new regions are ``r`` itself and ``r∩e`` for existing
        ``e``.
        """
        nx0, ny0, nx1, ny1 = new_box
        seen = set(boxes)
        out = list(boxes)
        if new_box not in seen:
            seen.add(new_box)
            out.append(new_box)
        for (bx0, by0, bx1, by1) in list(boxes):
            ix0 = nx0 if nx0 > bx0 else bx0
            ix1 = nx1 if nx1 < bx1 else bx1
            w = ix1 - ix0
            if w <= 0.0:
                continue
            iy0 = ny0 if ny0 > by0 else by0
            iy1 = ny1 if ny1 < by1 else by1
            h = iy1 - iy0
            if h <= 0.0 or w * h <= _AREA_EPS:
                continue
            key = (ix0, iy0, ix1, iy1)
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def closure_with_removed(self, removed_box: Box,
                             new_input_boxes: Set[Box]) -> List[Box]:
        """The surviving closure after removing one input rectangle.

        Every closure node equals the intersection of the inputs that
        contain it (its sources), so a node survives the removal of
        input(s) with corner tuple ``removed_box`` iff the intersection
        of its *remaining* sources still equals its own rectangle.
        Zero-area rectangles only belong to a closure as inputs, so
        they additionally must appear in ``new_input_boxes``.
        """
        doomed = {i for i, r in enumerate(self.input_rects)
                  if r is not None and (r.min_x, r.min_y,
                                        r.max_x, r.max_y) == removed_box}
        rects = self.input_rects
        out: List[Box] = []
        for nid in self._region_ids():
            node = self._nodes[nid]
            rect = node.rect
            assert rect is not None
            box = (rect.min_x, rect.min_y, rect.max_x, rect.max_y)
            survivors = node.sources - doomed
            if not survivors:
                continue
            if node.sources & doomed:
                x0 = y0 = float("-inf")
                x1 = y1 = float("inf")
                for i in survivors:
                    r = rects[i]
                    assert r is not None
                    if r.min_x > x0:
                        x0 = r.min_x
                    if r.min_y > y0:
                        y0 = r.min_y
                    if r.max_x < x1:
                        x1 = r.max_x
                    if r.max_y < y1:
                        y1 = r.max_y
                if (x0, y0, x1, y1) != box:
                    continue  # only existed because of the removed rect
            w = box[2] - box[0]
            h = box[3] - box[1]
            if w * h <= _AREA_EPS and box not in new_input_boxes:
                continue  # eps-area regions are never intersection nodes
            out.append(box)
        return out

    # ------------------------------------------------------------------
    # Reference (naive) construction — kept for equivalence tests
    # ------------------------------------------------------------------

    @classmethod
    def build_reference(cls, rects: Sequence[Rect], universe: Rect,
                        max_nodes: int = 4096) -> "RegionLattice":
        """Build with the original quadratic-rescan algorithm.

        This is the pre-optimization builder, verbatim: fixpoint
        closure that rescans every region per round, cubic covered-set
        Hasse linking, and per-node containment scans for sources.
        Property tests assert the optimized builder produces an
        identical lattice; benches use it as the "before" timing.
        """
        self = cls.__new__(cls)
        for i, rect in enumerate(rects):
            if not universe.intersects(rect):
                raise FusionError(
                    f"input rectangle {i} lies outside the universe")
        self.universe = universe
        self.input_rects = [r.clipped_to(universe) for r in rects]
        self._nodes = {}
        self._by_rect = {}
        self._counter = 0
        self._max_nodes = max_nodes
        self._overlap_pairs = None
        self._build_naive()
        return self

    def _build_naive(self) -> None:
        self._nodes[TOP] = LatticeNode(TOP, self.universe)
        self._nodes[BOTTOM] = LatticeNode(BOTTOM, None)
        self._by_rect[self._key(self.universe)] = TOP

        for rect in self.input_rects:
            assert rect is not None
            self._intern(rect)

        # Close under pairwise intersection until a fixpoint.
        frontier = [n for n in self._region_ids()]
        while frontier:
            new_ids: List[str] = []
            region_ids = self._region_ids()
            for a_id in frontier:
                a = self._nodes[a_id].rect
                assert a is not None
                for b_id in region_ids:
                    if b_id == a_id:
                        continue
                    b = self._nodes[b_id].rect
                    assert b is not None
                    overlap = a.intersection(b)
                    if overlap is None or overlap.area <= _AREA_EPS:
                        continue
                    if self._key(overlap) not in self._by_rect:
                        new_ids.append(self._intern(overlap))
            frontier = new_ids

        self._assign_sources_naive()
        self._link_hasse_naive()

    def _assign_sources_naive(self) -> None:
        for node_id in self._region_ids():
            node = self._nodes[node_id]
            assert node.rect is not None
            node.sources = frozenset(
                i for i, rect in enumerate(self.input_rects)
                if rect is not None and rect.contains_rect(node.rect)
            )

    def _link_hasse_naive(self) -> None:
        """Containment cover edges: parent strictly contains child with
        no intermediate node between them."""
        ids = self._region_ids()
        rects = {nid: self._nodes[nid].rect for nid in ids}
        # strict containment: container strictly larger and contains.
        contains: Dict[str, Set[str]] = {nid: set() for nid in ids}
        for a in ids:
            ra = rects[a]
            assert ra is not None
            for b in ids:
                if a == b:
                    continue
                rb = rects[b]
                assert rb is not None
                if ra.contains_rect(rb) and ra.area > rb.area + _AREA_EPS:
                    contains[a].add(b)
        for a in ids:
            below = contains[a]
            covered = {
                b for b in below
                if not any(b in contains[c] for c in below if c != b)
            }
            for b in covered:
                self._nodes[a].children.add(b)
                self._nodes[b].parents.add(a)
        # Hook maximal regions under Top and minimal regions above Bottom.
        for nid in ids:
            node = self._nodes[nid]
            if not node.parents:
                node.parents.add(TOP)
                self._nodes[TOP].children.add(nid)
            if not node.children:
                node.children.add(BOTTOM)
                self._nodes[BOTTOM].parents.add(nid)
        if not ids:
            self._nodes[TOP].children.add(BOTTOM)
            self._nodes[BOTTOM].parents.add(TOP)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: str) -> LatticeNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise FusionError(f"unknown lattice node {node_id!r}") from None

    def nodes(self) -> List[LatticeNode]:
        return list(self._nodes.values())

    def region_nodes(self) -> List[LatticeNode]:
        """All nodes except Top and Bottom."""
        return [self._nodes[nid] for nid in self._region_ids()]

    def node_for_rect(self, rect: Rect) -> Optional[LatticeNode]:
        node_id = self._by_rect.get(self._key(rect))
        return self._nodes[node_id] if node_id is not None else None

    def parents_of_bottom(self) -> List[LatticeNode]:
        """The minimal regions — "the parents of the Bottom node (since
        these give the smallest areas)" (Section 4.2)."""
        return [self._nodes[nid] for nid in self._nodes[BOTTOM].parents
                if nid != TOP]

    def sensor_node_ids(self) -> List[str]:
        """Node ids corresponding to the input rectangles, input order."""
        out: List[str] = []
        for rect in self.input_rects:
            assert rect is not None
            out.append(self._by_rect[self._key(rect)])
        return out

    def intersection_node_ids(self) -> List[str]:
        """Nodes created purely by intersection (the D, E, F, G of Fig. 6)."""
        sensor_ids = set(self.sensor_node_ids())
        return [nid for nid in self._region_ids() if nid not in sensor_ids]

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def components(self) -> List[Set[int]]:
        """Connected components of input rectangles by intersection.

        Two readings in different components are *disjoint* evidence —
        the conflict case (Section 4.1.2, case 3).  Indices refer to
        the input rect list.  Overlap pairs memoized during
        construction are reused; only reference-built lattices fall
        back to recomputing them.
        """
        n = len(self.input_rects)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        if self._overlap_pairs is not None:
            for i, j in self._overlap_pairs:
                union(i, j)
        else:
            for i in range(n):
                ri = self.input_rects[i]
                assert ri is not None
                for j in range(i + 1, n):
                    rj = self.input_rects[j]
                    assert rj is not None
                    if ri.intersection_area(rj) > _AREA_EPS:
                        union(i, j)
        groups: Dict[int, Set[int]] = {}
        for i in range(n):
            groups.setdefault(find(i), set()).add(i)
        return sorted(groups.values(), key=lambda s: min(s))

    def to_dot(self, label_probability: bool = True) -> str:
        """The lattice as Graphviz DOT text (debugging/figures).

        Renders the Hasse diagram top-down: Top above the maximal
        sensor rectangles, intersections below, Bottom at the base —
        the orientation of the paper's Figure 6.
        """
        lines = ["digraph lattice {", "  rankdir=TB;",
                 '  node [shape=box, fontsize=10];']
        for node in self._nodes.values():
            attributes = [f'label="{node.node_id}']
            if node.rect is not None and not node.is_top:
                attributes[0] += f"\\narea={node.area:.0f}"
            if label_probability and node.probability == node.probability:
                attributes[0] += f"\\nP={node.probability:.3f}"
            attributes[0] += '"'
            if node.is_top or node.is_bottom:
                attributes.append("style=bold")
            lines.append(f'  "{node.node_id}" [{", ".join(attributes)}];')
        for node in self._nodes.values():
            for child_id in sorted(node.children):
                lines.append(f'  "{node.node_id}" -> "{child_id}";')
        lines.append("}")
        return "\n".join(lines)

    def check_invariants(self) -> None:
        """Assert lattice structural invariants (used by property tests)."""
        for node in self._nodes.values():
            for parent_id in node.parents:
                parent = self._nodes[parent_id]
                assert node.node_id in parent.children, "asymmetric edge"
                if node.rect is not None and parent.rect is not None:
                    assert parent.rect.contains_rect(node.rect) or \
                        parent.is_top, "parent does not contain child"
            for child_id in node.children:
                child = self._nodes[child_id]
                assert node.node_id in child.parents, "asymmetric edge"
        # Every region is reachable downward from Top.
        seen: Set[str] = set()
        stack = [TOP]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self._nodes[nid].children)
        assert seen == set(self._nodes), "unreachable lattice nodes"
        # Sources are exactly the containing inputs, and every node is
        # the intersection of its sources (the closure property the
        # incremental evolution relies on).
        for node in self.region_nodes():
            assert node.rect is not None
            for i, rect in enumerate(self.input_rects):
                assert rect is not None
                contained = rect.contains_rect(node.rect)
                assert (i in node.sources) == contained, \
                    f"sources mismatch on {node.node_id}"
            if node.sources:
                meet = None
                for i in node.sources:
                    r = self.input_rects[i]
                    assert r is not None
                    meet = r if meet is None else meet.intersection(r)
                    assert meet is not None
                assert meet == node.rect, \
                    f"{node.node_id} is not the meet of its sources"
        # Closedness: the intersection of any two region nodes with
        # positive overlap is itself a node.
        region = self.region_nodes()
        for a in range(len(region)):
            ra = region[a].rect
            assert ra is not None
            for b in range(a + 1, len(region)):
                rb = region[b].rect
                assert rb is not None
                overlap = ra.intersection(rb)
                if overlap is None or overlap.area <= _AREA_EPS:
                    continue
                assert self._by_rect.get(self._key(overlap)) is not None, \
                    "closure is missing an intersection region"
