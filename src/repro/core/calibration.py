"""Parameter calibration from observation studies.

The paper's stated future work: "We also plan to conduct user studies
to get accurate values of various parameters of our system like the
probability of carrying location devices and the temporal degradation
function.  These probability values can then be used by the middleware
and location-aware applications to improve their reliability and
accuracy" (Section 11).

This module implements those studies as estimators over observation
logs (which the simulator can generate with known ground truth, and a
real deployment would collect from annotated traces):

* ``x`` — carry probability, from (person present, device detected?)
  trials with the technology's known ``y`` factored out;
* ``y`` — detection probability, from trials where the device is known
  to be present;
* ``z`` — misidentification probability, from trials where the person
  is known to be absent;
* the temporal degradation function — an exponential half-life fitted
  to (reading age, still correct?) samples.

Every estimate carries a Wilson score interval so deployments know
when they have watched long enough.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.sensorspec import SensorSpec, derive_pq
from repro.core.tdf import ExponentialTDF
from repro.errors import CalibrationError


@dataclass(frozen=True)
class RateEstimate:
    """An estimated probability with its Wilson 95% interval."""

    value: float
    low: float
    high: float
    trials: int

    @property
    def width(self) -> float:
        return self.high - self.low


def wilson_interval(successes: int, trials: int,
                    z_score: float = 1.96) -> RateEstimate:
    """The Wilson score interval for a binomial rate."""
    if trials <= 0:
        raise CalibrationError("need at least one trial")
    if not 0 <= successes <= trials:
        raise CalibrationError(
            f"successes {successes} outside [0, {trials}]")
    rate = successes / trials
    denom = 1.0 + z_score**2 / trials
    center = (rate + z_score**2 / (2 * trials)) / denom
    margin = (z_score * math.sqrt(
        rate * (1 - rate) / trials + z_score**2 / (4 * trials**2))
        / denom)
    return RateEstimate(rate, max(0.0, center - margin),
                        min(1.0, center + margin), trials)


class BinomialEstimator:
    """Counts success/failure trials and reports a rate estimate."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.successes = 0
        self.trials = 0

    def record(self, success: bool) -> None:
        self.trials += 1
        if success:
            self.successes += 1

    def estimate(self) -> RateEstimate:
        if self.trials == 0:
            raise CalibrationError(
                f"no trials recorded for {self.name!r}")
        return wilson_interval(self.successes, self.trials)


class CarryProbabilityEstimator:
    """Estimates ``x`` — "what percentage of time the user carries his
    badge with him" (Section 4.1.1).

    Each trial: the person was verifiably inside the sensor's coverage
    (e.g. seen on a door camera or card swipe); was the device
    detected?  P(detected | present) = y * x, so x = rate / y.
    """

    def __init__(self, detection_probability: float) -> None:
        if not 0.0 < detection_probability <= 1.0:
            raise CalibrationError(
                f"y must be in (0, 1], got {detection_probability}")
        self.y = detection_probability
        self._trials = BinomialEstimator("carry")

    def record_presence_trial(self, device_detected: bool) -> None:
        self._trials.record(device_detected)

    def estimate(self) -> RateEstimate:
        raw = self._trials.estimate()
        return RateEstimate(
            min(1.0, raw.value / self.y),
            min(1.0, raw.low / self.y),
            min(1.0, raw.high / self.y),
            raw.trials,
        )


class DetectionProbabilityEstimator:
    """Estimates ``y`` from trials where the device is known present."""

    def __init__(self) -> None:
        self._trials = BinomialEstimator("detection")

    def record_device_present_trial(self, detected: bool) -> None:
        self._trials.record(detected)

    def estimate(self) -> RateEstimate:
        return self._trials.estimate()


class MisidentificationEstimator:
    """Estimates ``z`` from trials where the person is known absent."""

    def __init__(self) -> None:
        self._trials = BinomialEstimator("misidentification")

    def record_absence_trial(self, falsely_detected: bool) -> None:
        self._trials.record(falsely_detected)

    def estimate(self) -> RateEstimate:
        return self._trials.estimate()


# ----------------------------------------------------------------------
# Temporal degradation fitting
# ----------------------------------------------------------------------

@dataclass
class TdfFit:
    """A fitted temporal degradation function with its quality."""

    half_life: float
    tdf: ExponentialTDF
    bucket_ages: List[float]
    bucket_rates: List[float]
    rmse: float


class TdfFitter:
    """Fits an exponential tdf to (age, still-correct?) samples.

    A "still correct" sample means the reading's claimed region still
    contained the person ``age`` seconds after detection.  Bucketing by
    age gives an empirical survival curve; the exponential half-life is
    fitted by least squares on the log of the positive bucket rates.
    """

    def __init__(self, bucket_width: float = 5.0) -> None:
        if bucket_width <= 0.0:
            raise CalibrationError("bucket width must be positive")
        self.bucket_width = bucket_width
        self._samples: List[Tuple[float, bool]] = []

    def record(self, age_seconds: float, still_correct: bool) -> None:
        if age_seconds < 0.0:
            raise CalibrationError(f"negative age {age_seconds}")
        self._samples.append((age_seconds, still_correct))

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def _buckets(self) -> Tuple[List[float], List[float]]:
        if not self._samples:
            raise CalibrationError("no tdf samples recorded")
        totals: dict = {}
        hits: dict = {}
        for age, correct in self._samples:
            index = int(age // self.bucket_width)
            totals[index] = totals.get(index, 0) + 1
            hits[index] = hits.get(index, 0) + (1 if correct else 0)
        ages = []
        rates = []
        for index in sorted(totals):
            ages.append((index + 0.5) * self.bucket_width)
            rates.append(hits[index] / totals[index])
        return ages, rates

    def fit(self) -> TdfFit:
        """Least-squares exponential fit on the survival curve.

        Model: rate(age) = rate(0) * 0.5 ** (age / half_life); we fit
        ln(rate) = ln(r0) - (ln 2 / half_life) * age over buckets with
        a positive rate.
        """
        ages, rates = self._buckets()
        xs = [a for a, r in zip(ages, rates) if r > 0.0]
        ys = [math.log(r) for r in rates if r > 0.0]
        if len(xs) < 2:
            raise CalibrationError(
                "need at least two age buckets with survivors")
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        if sxx == 0.0:
            raise CalibrationError("all samples in one age bucket")
        slope = sum((x - mean_x) * (y - mean_y)
                    for x, y in zip(xs, ys)) / sxx
        if slope >= 0.0:
            # No observable decay in the study window.
            half_life = float("inf")
            fitted = [math.exp(mean_y)] * len(ages)
        else:
            half_life = math.log(2.0) / -slope
            intercept = mean_y - slope * mean_x
            fitted = [math.exp(intercept + slope * a) for a in ages]
        rmse = math.sqrt(sum((f - r) ** 2
                             for f, r in zip(fitted, rates)) / len(rates))
        tdf = ExponentialTDF(half_life=min(half_life, 1e9))
        return TdfFit(half_life=half_life, tdf=tdf, bucket_ages=ages,
                      bucket_rates=rates, rmse=rmse)


# ----------------------------------------------------------------------
# Putting a spec together from a study
# ----------------------------------------------------------------------

@dataclass
class CalibrationReport:
    """Everything a study learned about one technology."""

    sensor_type: str
    x: RateEstimate
    y: RateEstimate
    z: RateEstimate
    tdf_fit: Optional[TdfFit] = None

    @property
    def p(self) -> float:
        return derive_pq(self.x.value, self.y.value, self.z.value)[0]

    @property
    def q(self) -> float:
        return derive_pq(self.x.value, self.y.value, self.z.value)[1]

    def to_spec(self, reference: SensorSpec) -> SensorSpec:
        """A new spec with the calibrated parameters, keeping the
        reference spec's geometry (resolution, area scaling, TTL)."""
        return SensorSpec(
            sensor_type=reference.sensor_type,
            carry_probability=min(1.0, self.x.value),
            detection_probability=min(1.0, self.y.value),
            misident_probability=min(1.0, self.z.value),
            z_area_scaled=reference.z_area_scaled,
            resolution=reference.resolution,
            time_to_live=reference.time_to_live,
            tdf=self.tdf_fit.tdf if self.tdf_fit is not None
            else reference.tdf,
        )

    def summary(self) -> str:
        lines = [
            f"calibration of {self.sensor_type}:",
            f"  x = {self.x.value:.3f} "
            f"[{self.x.low:.3f}, {self.x.high:.3f}] "
            f"({self.x.trials} trials)",
            f"  y = {self.y.value:.3f} "
            f"[{self.y.low:.3f}, {self.y.high:.3f}] "
            f"({self.y.trials} trials)",
            f"  z = {self.z.value:.3f} "
            f"[{self.z.low:.3f}, {self.z.high:.3f}] "
            f"({self.z.trials} trials)",
            f"  derived p = {self.p:.3f}, q = {self.q:.3f}",
        ]
        if self.tdf_fit is not None:
            lines.append(
                f"  tdf half-life = {self.tdf_fit.half_life:.1f} s "
                f"(rmse {self.tdf_fit.rmse:.3f})")
        return "\n".join(lines)
