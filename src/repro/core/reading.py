"""Normalized sensor readings — the fusion engine's input.

"The first step in our algorithm is to get all the sensor data in a
common format.  All locations are converted to a common coordinate
format (such as the building's) and are expressed as minimum bounding
rectangles" (Section 4.1.2).  A :class:`NormalizedReading` is exactly
that: one sensor's claim that a mobile object is inside a canonical-
frame rectangle at a given time, plus the spec needed to weigh it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.sensorspec import SensorSpec
from repro.errors import SensorError
from repro.geometry import Point, Rect


@dataclass(frozen=True)
class NormalizedReading:
    """One sensor reading in the common format.

    Attributes:
        sensor_id: which physical sensor produced the reading.
        object_id: the mobile object (person or device) detected.
        rect: the claimed region as a canonical-frame MBR.
        time: detection timestamp (seconds).
        spec: the sensor's error model.
        moving: whether this sensor's rectangle for this object has
            changed since its previous reading (conflict rule 1).
    """

    sensor_id: str
    object_id: str
    rect: Rect
    time: float
    spec: SensorSpec
    moving: bool = False

    def __post_init__(self) -> None:
        if self.rect.area < 0.0:
            raise SensorError("reading rectangle has negative area")

    def age_at(self, now: float) -> float:
        """Seconds elapsed since detection (clamped at zero)."""
        return max(0.0, now - self.time)

    def is_expired_at(self, now: float) -> bool:
        return self.spec.is_expired(self.age_at(now))

    def pq_at(self, now: float, universe_area: float) -> Tuple[float, float]:
        """The temporally degraded (p, q) pair at query time.

        ``p`` is degraded by the sensor's tdf; ``q`` is time-invariant
        (a stale reading is no more likely to be a false positive, it
        is just less likely to still be a true one).
        """
        p = self.spec.degraded_p(self.rect.area, universe_area,
                                 self.age_at(now))
        _, q = self.spec.pq(self.rect.area, universe_area)
        return p, q


def reading_from_coordinate(sensor_id: str, object_id: str, spec: SensorSpec,
                            location: Point, time: float,
                            error_radius: Optional[float] = None,
                            moving: bool = False) -> NormalizedReading:
    """Normalize a coordinate reading (location + error radius) to an MBR.

    The error radius defaults to the sensor's resolution: "some GPS
    devices have a resolution of 50 feet, which means that the object
    lies within a circle of 50 feet from the location given"
    (Section 3.2).  The circle becomes its bounding square.
    """
    radius = error_radius if error_radius is not None else spec.resolution
    if radius is None or radius <= 0.0:
        raise SensorError(
            f"coordinate reading from {sensor_id!r} needs an error radius")
    rect = Rect.from_center(location, radius)
    return NormalizedReading(sensor_id, object_id, rect, time, spec, moving)


def reading_from_region(sensor_id: str, object_id: str, spec: SensorSpec,
                        region: Rect, time: float,
                        moving: bool = False) -> NormalizedReading:
    """Normalize a symbolic reading (e.g. "inside room 3105") to an MBR.

    Card readers and RF base stations report a region, not a point:
    the region's MBR is the reading.
    """
    return NormalizedReading(sensor_id, object_id, region, time, spec, moving)
