"""Location estimates — what queries return to applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.classify import ProbabilityBucket
from repro.geometry import Point, Rect


@dataclass(frozen=True)
class LocationEstimate:
    """A single-valued location answer (Section 4.2).

    "Most location-sensitive applications just require a single value
    for the location of a person and do not want to deal with a
    spatial probability distribution."

    Attributes:
        object_id: the mobile object located.
        rect: the estimated region (canonical frame MBR).
        probability: the support confidence — how sure the middleware
            is that the object really is in ``rect``, on the scale the
            Section 4.4 buckets grade (see
            :func:`repro.core.fusion.support_confidence`).
        bucket: the classified grade of that confidence (Section 4.4).
        time: the query time the estimate was computed for.
        sources: ids of the sensors whose readings support the region.
        moving: whether any supporting reading was moving.
        symbolic: the estimate as a symbolic GLOB string when the
            Location Service resolved one (possibly coarsened by a
            privacy policy), else ``None``.
        posterior: the uniform-prior region posterior from the paper's
            Equation (7) — the "where in the whole building" number.
    """

    object_id: str
    rect: Rect
    probability: float
    bucket: ProbabilityBucket
    time: float
    sources: Tuple[str, ...] = ()
    moving: bool = False
    symbolic: Optional[str] = None
    posterior: float = 0.0

    @property
    def center(self) -> Point:
        """The center point of the estimated region."""
        return self.rect.center

    def with_symbolic(self, symbolic: Optional[str]) -> "LocationEstimate":
        """A copy carrying a symbolic resolution."""
        return LocationEstimate(
            self.object_id, self.rect, self.probability, self.bucket,
            self.time, self.sources, self.moving, symbolic, self.posterior)

    def __str__(self) -> str:
        where = self.symbolic if self.symbolic else repr(self.rect)
        return (f"{self.object_id} @ {where} "
                f"(p={self.probability:.3f}, {self.bucket.value})")
