"""Sensor error model: x, y, z and the derived p/q pair (Section 4.1.1).

The paper characterizes every location technology by three primitives:

* ``x`` — P(person is carrying the device).  1.0 for biometrics.
* ``y`` — P(sensor says device is in A | device is in A), from the
  product specification (e.g. 0.95 for Ubisense).
* ``z`` — P(sensor says device is in A | device is not in A), the
  misidentification probability.  For coverage-area technologies the
  paper scales it with the region: ``z = z0 * area(A) / area(U)``.

From these it derives the two confidence values used by fusion:

* ``p = P(sensor says A | person in A)``  — detection probability,
* ``q = P(sensor says A | person not in A)`` — false-detection
  probability.

Note on the paper's algebra: Section 4.1.1 derives the *miss*
probability ``(1-y)*x + (1-z)*(1-x)`` and calls it ``p``, but the
fusion equations of Section 4.1.2 use ``p_i`` as the *detection*
probability ``P(s_i,A | person_A)`` (see Eq. 2).  We follow the fusion
semantics: ``p`` here is the complement of the Section 4.1.1 miss
probability, ``p = y*x + z*(1-x)``.  ``q`` follows the paper exactly:
``q = z*x + (y+z)*(1-x) = z + y*(1-x)``, clamped into [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.tdf import ConstantTDF, TemporalDegradationFunction
from repro.errors import SensorError


def derive_pq(x: float, y: float, z: float) -> Tuple[float, float]:
    """Derive (p, q) from carrying/detection/misidentification probs.

    >>> p, q = derive_pq(x=1.0, y=0.95, z=0.01)
    >>> round(p, 3), round(q, 3)
    (0.95, 0.01)
    """
    for name, value in (("x", x), ("y", y), ("z", z)):
        if not 0.0 <= value <= 1.0:
            raise SensorError(f"{name}={value} is not a probability")
    p = y * x + z * (1.0 - x)
    q = min(1.0, z + y * (1.0 - x))
    return p, q


@dataclass(frozen=True)
class SensorSpec:
    """Static characteristics of one location sensing technology.

    Attributes:
        sensor_type: technology name ("Ubisense", "RF", "Biometric", ...).
        carry_probability: ``x``.
        detection_probability: ``y``.
        misident_probability: base ``z`` (``z0`` when area-scaled).
        z_area_scaled: when True, the effective ``z`` for a reading of
            area ``a`` in universe ``U`` is ``z0 * a / area(U)`` —
            exactly the paper's Ubisense/RF calibration.
        resolution: detection radius in feet for coordinate sensors;
            ``None`` for symbolic sensors (the reading's region is the
            room itself).
        time_to_live: seconds before a reading expires outright.
        tdf: temporal degradation applied to ``p`` before fusion.
    """

    sensor_type: str
    carry_probability: float
    detection_probability: float
    misident_probability: float
    z_area_scaled: bool = False
    resolution: Optional[float] = None
    time_to_live: float = 60.0
    tdf: TemporalDegradationFunction = field(default_factory=ConstantTDF)

    def __post_init__(self) -> None:
        derive_pq(self.carry_probability, self.detection_probability,
                  self.misident_probability)  # validates ranges
        if self.resolution is not None and self.resolution <= 0.0:
            raise SensorError(f"resolution must be positive: {self.resolution}")
        if self.time_to_live <= 0.0:
            raise SensorError(f"TTL must be positive: {self.time_to_live}")

    # ------------------------------------------------------------------
    # Derived probabilities
    # ------------------------------------------------------------------

    def effective_z(self, reading_area: float, universe_area: float) -> float:
        """The misidentification probability for a reading of this area."""
        if not self.z_area_scaled:
            return self.misident_probability
        if universe_area <= 0.0:
            raise SensorError("universe area must be positive")
        ratio = min(1.0, max(0.0, reading_area / universe_area))
        return self.misident_probability * ratio

    def pq(self, reading_area: float, universe_area: float) -> Tuple[float, float]:
        """The (p, q) pair for a reading of the given area."""
        z = self.effective_z(reading_area, universe_area)
        return derive_pq(self.carry_probability,
                         self.detection_probability, z)

    def degraded_p(self, reading_area: float, universe_area: float,
                   age_seconds: float) -> float:
        """``p`` after temporal degradation, floored at ``q``.

        "All p_i's are net probabilities obtained after applying the
        temporal degradation function" (Section 4.1.2).  We floor the
        degraded ``p`` at ``q``: letting it sink below ``q`` would turn
        a stale reading into *negative* evidence for its own region,
        which none of the paper's machinery intends — at the floor the
        reading is exactly uninformative.
        """
        p, q = self.pq(reading_area, universe_area)
        return max(q, self.tdf.degrade(p, age_seconds))

    def is_expired(self, age_seconds: float) -> bool:
        """Whether a reading of this age is past the TTL."""
        return age_seconds > self.time_to_live

    def confidence_percent(self) -> float:
        """Headline confidence for the sensor-metadata table (Table 2)."""
        p, _ = derive_pq(self.carry_probability, self.detection_probability,
                         self.misident_probability)
        return round(p * 100.0, 1)
