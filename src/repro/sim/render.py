"""ASCII rendering of floors, people and estimates.

A deployment tool, not a toy: examples and the CLI use it to show
where ground truth and fused estimates actually are, and tests assert
against its deterministic output.  Rooms are drawn from their
canonical MBRs, doors as ``+`` on the sill, people as digits/letters,
estimate rectangles as ``*`` corners.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.estimate import LocationEstimate
from repro.errors import SimulationError
from repro.geometry import Point, Rect
from repro.model import WorldModel
from repro.sim.movement import PersonState


class FloorRenderer:
    """Renders one world's canonical plane into character cells.

    Args:
        world: the world model.
        width: output width in characters; height follows from the
            floor's aspect ratio (with a 0.5 vertical squash because
            terminal cells are tall).
    """

    def __init__(self, world: WorldModel, width: int = 96) -> None:
        if width < 20:
            raise SimulationError("render width must be >= 20")
        self.world = world
        self.bounds = world.universe()
        self.width = width
        scale = (width - 1) / self.bounds.width
        self.height = max(8, int(self.bounds.height * scale * 0.5) + 1)

    # ------------------------------------------------------------------

    def _to_cell(self, p: Point) -> Tuple[int, int]:
        fx = (p.x - self.bounds.min_x) / self.bounds.width
        fy = (p.y - self.bounds.min_y) / self.bounds.height
        col = min(self.width - 1, max(0, int(fx * (self.width - 1))))
        # Row 0 is the top of the picture = max y.
        row = min(self.height - 1,
                  max(0, int((1.0 - fy) * (self.height - 1))))
        return row, col

    def _draw_rect(self, grid: List[List[str]], rect: Rect,
                   char: str = "#") -> None:
        top_left = self._to_cell(Point(rect.min_x, rect.max_y))
        bottom_right = self._to_cell(Point(rect.max_x, rect.min_y))
        r0, c0 = top_left
        r1, c1 = bottom_right
        for col in range(c0, c1 + 1):
            grid[r0][col] = char
            grid[r1][col] = char
        for row in range(r0, r1 + 1):
            grid[row][c0] = char
            grid[row][c1] = char

    def _label(self, grid: List[List[str]], rect: Rect,
               text: str) -> None:
        r0, c0 = self._to_cell(Point(rect.min_x, rect.max_y))
        row = r0 + 1
        col = c0 + 1
        if row >= self.height - 1:
            return
        for offset, ch in enumerate(text[: max(0, self.width - col - 2)]):
            if grid[row][col + offset] == " ":
                grid[row][col + offset] = ch

    # ------------------------------------------------------------------

    def render(self, people: Sequence[PersonState] = (),
               estimates: Sequence[LocationEstimate] = (),
               label_rooms: bool = True) -> str:
        """The floor picture as a multi-line string."""
        grid = [[" "] * self.width for _ in range(self.height)]

        for entity in self.world.entities():
            if not entity.entity_type.is_enclosing:
                continue
            rect = self.world.canonical_mbr(entity.glob)
            self._draw_rect(grid, rect)
            if label_rooms and entity.glob.leaf:
                self._label(grid, rect, entity.glob.leaf)

        for door in self.world.doors():
            mid = self.world.frames.convert_point(
                door.sill.midpoint, door.frame, "")
            row, col = self._to_cell(mid)
            grid[row][col] = "+"

        legend: Dict[str, str] = {}
        for estimate in estimates:
            row0, col0 = self._to_cell(
                Point(estimate.rect.min_x, estimate.rect.max_y))
            row1, col1 = self._to_cell(
                Point(estimate.rect.max_x, estimate.rect.min_y))
            for row, col in ((row0, col0), (row0, col1),
                             (row1, col0), (row1, col1)):
                grid[row][col] = "*"

        for index, person in enumerate(people):
            marker = str(index + 1) if index < 9 else chr(
                ord("a") + index - 9)
            row, col = self._to_cell(person.position)
            grid[row][col] = marker
            legend[marker] = person.person_id

        lines = ["".join(row).rstrip() for row in grid]
        if legend:
            lines.append("")
            lines.append("people: " + "  ".join(
                f"{marker}={name}" for marker, name in legend.items()))
        if estimates:
            lines.append("estimates (*): " + "  ".join(
                f"{e.object_id}@{e.symbolic or 'coords'}"
                for e in estimates))
        return "\n".join(lines)


def render_scenario(scenario, width: int = 96,
                    with_estimates: bool = True) -> str:
    """Convenience: render a scenario's current state."""
    from repro.errors import UnknownObjectError

    estimates: List[LocationEstimate] = []
    if with_estimates:
        for person in scenario.people:
            try:
                estimates.append(scenario.service.locate(
                    person.person_id))
            except UnknownObjectError:
                continue
    renderer = FloorRenderer(scenario.world, width)
    return renderer.render(scenario.people, estimates)
