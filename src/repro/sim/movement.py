"""Person movement simulation.

The paper tracked real people in the Siebel Center; we generate the
same signal synthetically: each simulated person walks between rooms
along the navigation graph (room center -> door sill -> next room
center) at walking speed, dwells, then picks a new destination.  The
trajectory is the *ground truth* that sensor models observe noisily
and that accuracy benchmarks score estimates against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.geometry import Point
from repro.model import WorldModel
from repro.reasoning import NavigationGraph

WALKING_SPEED_FT_S = 4.0


@dataclass
class PersonState:
    """Ground truth for one simulated person."""

    person_id: str
    position: Point
    region: str                    # GLOB of the current region
    carrying_badge: bool = True
    speed: float = WALKING_SPEED_FT_S
    # Remaining waypoints of the current trip: (target point, region
    # the person is in after reaching it).
    waypoints: List[Tuple[Point, str]] = field(default_factory=list)
    dwell_until: float = 0.0
    previous_region: Optional[str] = None

    @property
    def moving(self) -> bool:
        return bool(self.waypoints)


class MovementModel:
    """Random-waypoint movement over a world's navigation graph.

    Args:
        world: the building.
        seed: RNG seed — identical seeds give identical trajectories.
        dwell_range: (min, max) seconds spent in a room on arrival.
        badge_carry_probability: per-person chance of carrying their
            badge today (the paper's ``x``, drawn once per person).
    """

    def __init__(self, world: WorldModel, seed: int = 7,
                 dwell_range: Tuple[float, float] = (20.0, 90.0),
                 badge_carry_probability: float = 0.9,
                 allow_restricted: bool = True) -> None:
        self.world = world
        self.navigation = NavigationGraph(world)
        self.rng = random.Random(seed)
        self.dwell_range = dwell_range
        self.badge_carry_probability = badge_carry_probability
        self.allow_restricted = allow_restricted
        self.people: List[PersonState] = []
        self._rooms = self._navigable_rooms()
        if not self._rooms:
            raise SimulationError("world has no navigable rooms")

    def _navigable_rooms(self) -> List[str]:
        rooms = [str(e.glob) for e in self.world.entities()
                 if e.entity_type.is_enclosing
                 and e.entity_type.value in ("Room", "Corridor")]
        return sorted(r for r in rooms if self.navigation.graph.has_node(r))

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add_person(self, person_id: str,
                   start_region: Optional[str] = None) -> PersonState:
        """Place a person at the center of a (random) starting room."""
        region = start_region if start_region is not None \
            else self.rng.choice(self._rooms)
        if region not in self._rooms:
            raise SimulationError(f"unknown start region {region!r}")
        position = self.world.canonical_mbr(region).center
        person = PersonState(
            person_id=person_id,
            position=position,
            region=region,
            carrying_badge=self.rng.random()
            < self.badge_carry_probability,
        )
        self.people.append(person)
        return person

    def person(self, person_id: str) -> PersonState:
        for person in self.people:
            if person.person_id == person_id:
                return person
        raise SimulationError(f"unknown person {person_id!r}")

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _plan_trip(self, person: PersonState, now: float) -> None:
        choices = [r for r in self._rooms if r != person.region]
        target = self.rng.choice(choices)
        route = self.navigation.route(person.region, target,
                                      allow_restricted=self.allow_restricted)
        if route is None:
            return  # target unreachable; try again next tick
        waypoints: List[Tuple[Point, str]] = []
        for previous, current in zip(route.regions, route.regions[1:]):
            doors = self.world.doors_between(previous, current)
            if doors:
                sill = doors[0]
                mid = self.world.frames.convert_point(
                    sill.sill.midpoint, sill.frame, "")
                # Reaching the sill counts as entering the next region.
                waypoints.append((mid, current))
            waypoints.append(
                (self.world.canonical_mbr(current).center, current))
        person.waypoints = waypoints

    def step(self, now: float, dt: float) -> None:
        """Advance every person by ``dt`` seconds of walking/dwelling."""
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt}")
        for person in self.people:
            self._step_person(person, now, dt)

    def _step_person(self, person: PersonState, now: float,
                     dt: float) -> None:
        person.previous_region = person.region
        if not person.waypoints:
            if now < person.dwell_until:
                return
            self._plan_trip(person, now)
            if not person.waypoints:
                return
        budget = person.speed * dt
        while budget > 0.0 and person.waypoints:
            target, region_after = person.waypoints[0]
            gap = person.position.distance_to(target)
            if gap <= budget:
                person.position = target
                person.region = region_after
                person.waypoints.pop(0)
                budget -= gap
            else:
                fraction = budget / gap
                person.position = Point(
                    person.position.x
                    + (target.x - person.position.x) * fraction,
                    person.position.y
                    + (target.y - person.position.y) * fraction,
                    person.position.z,
                )
                budget = 0.0
        if not person.waypoints:
            person.dwell_until = now + self.rng.uniform(*self.dwell_range)

    def entered_region(self, person: PersonState) -> Optional[str]:
        """The region the person entered on the last step, if any."""
        if person.previous_region != person.region:
            return person.region
        return None
