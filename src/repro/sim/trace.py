"""Accuracy tracing: estimates vs ground truth.

The paper's future work calls for "user studies to get accurate values
of various parameters"; the simulator can do better — it knows the
ground truth.  The trace records, per (person, tick), the true
position/region against the fused estimate, and reduces them to the
metrics the accuracy ablations report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import LocationEstimate
from repro.model import WorldModel
from repro.sim.movement import PersonState


@dataclass
class TraceSample:
    """One scored estimate."""

    person_id: str
    time: float
    true_region: str
    estimated_region: Optional[str]
    error_ft: float
    confidence: float
    rect_hit: bool   # true position inside the estimated rectangle


@dataclass
class AccuracySummary:
    """Aggregate accuracy over a trace."""

    samples: int
    misses: int                  # ticks with no locatable estimate
    mean_error_ft: float
    median_error_ft: float
    room_accuracy: float         # fraction with the right room
    rect_hit_rate: float         # fraction with truth inside the rect
    mean_confidence: float


class AccuracyTrace:
    """Collects and summarizes estimate-vs-truth samples."""

    def __init__(self, world: WorldModel) -> None:
        self.world = world
        self.samples: List[TraceSample] = []
        self.miss_counts: Dict[str, int] = {}

    def record(self, person: PersonState, estimate: LocationEstimate,
               now: float) -> TraceSample:
        error = estimate.rect.center.distance_to(person.position)
        sample = TraceSample(
            person_id=person.person_id,
            time=now,
            true_region=person.region,
            estimated_region=estimate.symbolic,
            error_ft=error,
            confidence=estimate.probability,
            rect_hit=estimate.rect.contains_point(person.position),
        )
        self.samples.append(sample)
        return sample

    def record_miss(self, person: PersonState, now: float) -> None:
        self.miss_counts[person.person_id] = \
            self.miss_counts.get(person.person_id, 0) + 1

    # ------------------------------------------------------------------

    def summary(self) -> AccuracySummary:
        if not self.samples:
            return AccuracySummary(0, sum(self.miss_counts.values()),
                                   float("nan"), float("nan"), 0.0, 0.0,
                                   0.0)
        errors = sorted(s.error_ft for s in self.samples)
        n = len(errors)
        median = errors[n // 2] if n % 2 else \
            (errors[n // 2 - 1] + errors[n // 2]) / 2.0
        room_hits = sum(
            1 for s in self.samples
            if s.estimated_region is not None
            and _same_or_within(s.true_region, s.estimated_region))
        return AccuracySummary(
            samples=n,
            misses=sum(self.miss_counts.values()),
            mean_error_ft=sum(errors) / n,
            median_error_ft=median,
            room_accuracy=room_hits / n,
            rect_hit_rate=sum(1 for s in self.samples if s.rect_hit) / n,
            mean_confidence=sum(s.confidence for s in self.samples) / n,
        )


def _same_or_within(true_region: str, estimated_region: str) -> bool:
    """Correct when the estimate names the true region or an ancestor.

    Estimating "SC/3" for someone in "SC/3/3105" is coarse but not
    wrong; estimating a sibling room is wrong.
    """
    return (true_region == estimated_region
            or true_region.startswith(estimated_region + "/"))
