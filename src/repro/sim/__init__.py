"""Simulation substrate: buildings, people, physical sensors, clock.

The paper evaluated MiddleWhere on a live deployment in the Siebel
Center; this package generates the equivalent signal synthetically —
a modelled building (including the paper's Table-1 floor), people
walking the navigation graph, and sensor models emitting readings with
the calibrated error characteristics — so every middleware code path
runs exactly as it would against hardware.
"""

from repro.sim.building import (
    PAPER_FLOOR_GLOB,
    SIEBEL_PREFIX,
    campus_world,
    generate_office_floor,
    paper_floor,
    siebel_building,
    siebel_floor,
)
from repro.sim.render import FloorRenderer, render_scenario
from repro.sim.clock import SimClock
from repro.sim.deployment import (
    BluetoothStation,
    Deployment,
    DoorCardReader,
    FingerprintStation,
    RfStation,
    UbisenseCell,
)
from repro.sim.movement import MovementModel, PersonState
from repro.sim.scenario import Scenario
from repro.sim.study import SensorStudy
from repro.sim.tracefile import (
    TraceRecorder,
    copy_sensor_registrations,
    read_trace,
    replay_trace,
)
from repro.sim.trace import AccuracySummary, AccuracyTrace, TraceSample

__all__ = [
    "AccuracySummary",
    "AccuracyTrace",
    "BluetoothStation",
    "Deployment",
    "DoorCardReader",
    "FingerprintStation",
    "FloorRenderer",
    "campus_world",
    "render_scenario",
    "MovementModel",
    "PAPER_FLOOR_GLOB",
    "PersonState",
    "RfStation",
    "SIEBEL_PREFIX",
    "Scenario",
    "SensorStudy",
    "SimClock",
    "TraceRecorder",
    "TraceSample",
    "UbisenseCell",
    "copy_sensor_registrations",
    "read_trace",
    "replay_trace",
    "siebel_building",
    "generate_office_floor",
    "paper_floor",
    "siebel_floor",
]
