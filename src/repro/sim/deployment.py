"""Sensor deployment and the physical detection model.

Adapters (Section 6) wrap technologies; this module simulates the
technologies themselves.  Each deployed sensor watches the ground
truth (people's true positions) and fires its adapter with exactly the
error characteristics the paper calibrates:

* detection succeeds with probability ``y`` when the carried device is
  in range;
* coordinate sensors add Gaussian noise within their resolution;
* badge-based sensors see nothing when the badge was left behind;
* event sensors (card readers, biometrics) fire on room transitions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Protocol

from repro.geometry import Point, Rect
from repro.model import WorldModel
from repro.sensors import (
    BiometricAdapter,
    BluetoothAdapter,
    CardReaderAdapter,
    RfBadgeAdapter,
    UbisenseAdapter,
)
from repro.sim.movement import PersonState
from repro.spatialdb import SpatialDatabase


class DeployedSensor(Protocol):
    """One simulated physical sensor."""

    def observe(self, person: PersonState, now: float,
                entered: Optional[str]) -> None:
        """Look at one person's ground truth; maybe emit a reading."""
        ...


@dataclass
class UbisenseCell:
    """UWB coverage over an area: periodic precise fixes.

    ``coverage`` is a canonical-frame rectangle (the cell); people
    carrying their badge are fixed with probability ``y`` per period.
    """

    adapter: UbisenseAdapter
    coverage: Rect
    rng: random.Random
    period: float = 1.0
    _last_fix: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._last_fix = {}

    def observe(self, person: PersonState, now: float,
                entered: Optional[str]) -> None:
        if not person.carrying_badge:
            return
        if not self.coverage.contains_point(person.position):
            return
        last = self._last_fix.get(person.person_id, -float("inf"))
        if now - last < self.period:
            return
        if self.rng.random() >= self.adapter.spec.detection_probability:
            return  # missed this period
        noise = self.adapter.spec.resolution or 0.5
        fix = Point(
            person.position.x + self.rng.gauss(0.0, noise / 2.0),
            person.position.y + self.rng.gauss(0.0, noise / 2.0),
            person.position.z,
        )
        self._last_fix[person.person_id] = now
        self.adapter.tag_sighting(person.person_id, fix, now)


@dataclass
class RfStation:
    """An RF badge base station: hears badges within range.

    ``misident_rate`` is the per-scan probability of a *false*
    sighting of a person who is out of range (reading another badge's
    garbled ID as theirs) — the physical source of the paper's ``z``.
    """

    adapter: RfBadgeAdapter
    rng: random.Random
    period: float = 5.0
    misident_rate: float = 0.0
    _last_heard: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._last_heard = {}

    def observe(self, person: PersonState, now: float,
                entered: Optional[str]) -> None:
        # One scan attempt per person per period: the station polls on
        # a fixed schedule, and both hits and misidentifications are
        # per-scan Bernoulli trials (what calibration studies measure).
        last = self._last_heard.get(person.person_id, -float("inf"))
        if now - last < self.period:
            return
        self._last_heard[person.person_id] = now
        station = self.adapter._canonical_point(
            self.adapter.station_position)
        in_range = (station.distance_to(person.position)
                    <= self.adapter.range_ft)
        if in_range and person.carrying_badge:
            if self.rng.random() >= self.adapter.spec.detection_probability:
                return
        elif self.rng.random() >= self.misident_rate:
            return
        self.adapter.badge_sighting(person.person_id, now)


@dataclass
class BluetoothStation:
    """A Bluetooth inquiry station: slow, wide, unreliable."""

    adapter: BluetoothAdapter
    rng: random.Random
    period: float = 15.0
    _last_scan: float = -float("inf")

    def observe(self, person: PersonState, now: float,
                entered: Optional[str]) -> None:
        # Scans are batched: the station polls everyone at once, so the
        # scan clock is global rather than per person.
        if now - self._last_scan < self.period:
            return
        station = self.adapter._canonical_point(
            self.adapter.station_position)
        if station.distance_to(person.position) > self.adapter.range_ft:
            return
        if self.rng.random() >= self.adapter.spec.detection_probability:
            return
        self.adapter.inquiry_result([person.person_id], now)

    def finish_scan(self, now: float) -> None:
        """Advance the scan clock once per simulation tick."""
        if now - self._last_scan >= self.period:
            self._last_scan = now


@dataclass
class DoorCardReader:
    """A card reader on a restricted room: fires on entry."""

    adapter: CardReaderAdapter
    room_glob: str
    rng: random.Random

    def observe(self, person: PersonState, now: float,
                entered: Optional[str]) -> None:
        if entered != self.room_glob:
            return
        if self.rng.random() >= self.adapter.spec.detection_probability:
            return  # swipe misread; person buzzes in with someone else
        self.adapter.swipe(person.person_id, now)


@dataclass
class FingerprintStation:
    """A fingerprint reader inside a room: used shortly after entry."""

    adapter: BiometricAdapter
    room_glob: str
    rng: random.Random
    use_probability: float = 0.8
    logout_probability: float = 0.5

    def observe(self, person: PersonState, now: float,
                entered: Optional[str]) -> None:
        if entered == self.room_glob:
            if self.rng.random() < self.use_probability:
                self.adapter.authentication(person.person_id, now)
        elif (person.previous_region == self.room_glob
              and person.region != self.room_glob):
            # Leaving: sometimes people remember to log out.
            if self.rng.random() < self.logout_probability:
                self.adapter.logout(person.person_id, now)


class Deployment:
    """A set of deployed sensors attached to one database."""

    def __init__(self, db: SpatialDatabase, seed: int = 11) -> None:
        self.db = db
        self.rng = random.Random(seed)
        self.sensors: List[DeployedSensor] = []

    @property
    def world(self) -> WorldModel:
        return self.db.world

    def adapters(self) -> List[object]:
        """Every installed sensor's adapter (pipeline wiring helper)."""
        return [sensor.adapter for sensor in self.sensors
                if hasattr(sensor, "adapter")]

    def _fork_rng(self) -> random.Random:
        return random.Random(self.rng.getrandbits(64))

    # ------------------------------------------------------------------
    # Installers
    # ------------------------------------------------------------------

    def install_ubisense(self, adapter_id: str, coverage_glob: str,
                         carry_probability: float = 0.9,
                         period: float = 1.0) -> UbisenseCell:
        adapter = UbisenseAdapter(adapter_id, coverage_glob,
                                  carry_probability, frame="")
        adapter.attach(self.db)
        cell = UbisenseCell(adapter,
                            self.world.canonical_mbr(coverage_glob),
                            self._fork_rng(), period)
        self.sensors.append(cell)
        return cell

    def install_rf_station(self, adapter_id: str, room_glob: str,
                           carry_probability: float = 0.85,
                           period: float = 5.0,
                           misident_rate: float = 0.0) -> RfStation:
        center = self.world.canonical_mbr(room_glob).center
        adapter = RfBadgeAdapter(adapter_id, room_glob, center,
                                 carry_probability, frame="")
        adapter.attach(self.db)
        station = RfStation(adapter, self._fork_rng(), period,
                            misident_rate)
        self.sensors.append(station)
        return station

    def install_bluetooth(self, adapter_id: str, room_glob: str,
                          period: float = 15.0) -> BluetoothStation:
        center = self.world.canonical_mbr(room_glob).center
        adapter = BluetoothAdapter(adapter_id, room_glob, center, frame="")
        adapter.attach(self.db)
        station = BluetoothStation(adapter, self._fork_rng(), period)
        self.sensors.append(station)
        return station

    def install_card_reader(self, adapter_id: str,
                            room_glob: str) -> DoorCardReader:
        adapter = CardReaderAdapter(adapter_id, room_glob, frame="")
        adapter.attach(self.db)
        reader = DoorCardReader(adapter, room_glob, self._fork_rng())
        self.sensors.append(reader)
        return reader

    def install_fingerprint(self, adapter_id: str, room_glob: str,
                            **kwargs: float) -> FingerprintStation:
        position = self.world.canonical_mbr(room_glob).center
        adapter = BiometricAdapter(adapter_id, room_glob, position,
                                   frame="")
        adapter.attach(self.db)
        station = FingerprintStation(adapter, room_glob, self._fork_rng(),
                                     **kwargs)
        self.sensors.append(station)
        return station

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------

    def sense(self, people: List[PersonState], now: float) -> None:
        """One sensing pass over everyone's ground truth."""
        for person in people:
            entered = (person.region
                       if person.previous_region != person.region else None)
            for sensor in self.sensors:
                sensor.observe(person, now, entered)
        for sensor in self.sensors:
            finish = getattr(sensor, "finish_scan", None)
            if finish is not None:
                finish(now)
