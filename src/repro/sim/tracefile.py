"""Sensor-trace recording and replay.

A deployment's raw reading stream is its most valuable artifact: with
it, fusion changes can be evaluated offline against the exact same
inputs.  :class:`TraceRecorder` captures every reading inserted into a
spatial database as JSON-lines; :func:`replay_trace` feeds a recorded
stream into a fresh database (same world, possibly different fusion
configuration) for A/B comparisons.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, TextIO

from repro.errors import SimulationError
from repro.geometry import Point, Rect
from repro.spatialdb import Row, SpatialDatabase, Trigger

TRACE_TRIGGER_ID = "__trace_recorder__"


def _reading_to_record(row: Row) -> dict:
    location = row.get("location")
    return {
        "sensor_id": row["sensor_id"],
        "glob_prefix": row["glob_prefix"],
        "sensor_type": row["sensor_type"],
        "mobile_object_id": row["mobile_object_id"],
        "rect": [row["rect"].min_x, row["rect"].min_y,
                 row["rect"].max_x, row["rect"].max_y],
        "location": ([location.x, location.y, location.z]
                     if location is not None else None),
        "detection_radius": row["detection_radius"],
        "detection_time": row["detection_time"],
    }


class TraceRecorder:
    """Appends every inserted reading to a JSON-lines stream."""

    def __init__(self, db: SpatialDatabase, stream: TextIO) -> None:
        self.db = db
        self.stream = stream
        self.records = 0
        db.sensor_readings.create_trigger(Trigger(
            TRACE_TRIGGER_ID, "insert", lambda row: True, self._record))

    def _record(self, row: Row) -> None:
        self.stream.write(json.dumps(_reading_to_record(row),
                                     sort_keys=True) + "\n")
        self.records += 1

    def close(self) -> None:
        """Stop recording (the stream is the caller's to close)."""
        self.db.sensor_readings.drop_trigger(TRACE_TRIGGER_ID)


def read_trace(stream: TextIO) -> Iterator[dict]:
    """Parse a JSON-lines trace stream."""
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except ValueError as exc:
            raise SimulationError(
                f"bad trace line {line_number}: {exc}") from exc


def replay_trace(db: SpatialDatabase, records: Iterable[dict],
                 time_offset: float = 0.0) -> int:
    """Insert recorded readings into a database; returns the count.

    The target database must already have the sensors registered
    (their specs govern fusion, so an A/B run can deliberately register
    different ones).  Records are replayed in stream order.
    """
    count = 0
    for record in records:
        location = record.get("location")
        db.insert_reading(
            sensor_id=record["sensor_id"],
            glob_prefix=record["glob_prefix"],
            sensor_type=record["sensor_type"],
            mobile_object_id=record["mobile_object_id"],
            rect=Rect(*record["rect"]),
            detection_time=record["detection_time"] + time_offset,
            location=Point(*location) if location is not None else None,
            detection_radius=record.get("detection_radius", 0.0),
        )
        count += 1
    return count


def copy_sensor_registrations(source: SpatialDatabase,
                              target: SpatialDatabase) -> int:
    """Register the source database's sensors in the target.

    The usual prelude to a replay: same sensors, then A/B the engine.
    """
    count = 0
    for row in source.sensor_specs.select():
        target.register_sensor(
            sensor_id=row["sensor_id"],
            sensor_type=row["sensor_type"],
            confidence=row["confidence"],
            time_to_live=row["time_to_live"],
            spec=row["spec"],
        )
        count += 1
    return count
