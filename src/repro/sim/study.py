"""Simulated user studies — calibrating sensor parameters from traces.

The paper leaves parameter calibration as future work; the simulator
can run the study outright because it holds ground truth.  A
:class:`SensorStudy` watches one deployed RF station while a scenario
runs and feeds the :mod:`repro.core.calibration` estimators:

* every ``window`` seconds, each person contributes one trial —
  a *presence* trial when the ground truth puts them in range (was the
  badge heard? estimates ``y * x``), a ``y`` trial when additionally
  the badge is known carried, and an *absence* trial otherwise (was a
  reading fabricated? estimates ``z``);
* every reading contributes temporal-degradation samples: at a range
  of ages we check whether the claimed region still contains the
  person.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.calibration import (
    CalibrationReport,
    CarryProbabilityEstimator,
    DetectionProbabilityEstimator,
    MisidentificationEstimator,
    TdfFitter,
)
from repro.errors import SimulationError
from repro.geometry import Point, Rect
from repro.sim.deployment import RfStation
from repro.sim.scenario import Scenario


class SensorStudy:
    """Observation study of one RF station inside a scenario.

    Drive the scenario through :meth:`run` (instead of
    ``scenario.run``) so the study sees every window boundary.
    """

    def __init__(self, scenario: Scenario, station: RfStation,
                 window: Optional[float] = None,
                 tdf_probe_ages: Tuple[float, ...] = (2.0, 10.0, 20.0,
                                                      35.0, 50.0)) -> None:
        if window is None:
            # One scan attempt per window makes the heard-in-window
            # rate equal the per-scan probability being estimated.
            window = station.period
        if window <= 0.0:
            raise SimulationError("study window must be positive")
        self.scenario = scenario
        self.station = station
        self.window = window
        self.tdf_probe_ages = tdf_probe_ages
        spec = station.adapter.spec
        self.carry = CarryProbabilityEstimator(spec.detection_probability)
        self.detection = DetectionProbabilityEstimator()
        self.misident = MisidentificationEstimator()
        self.tdf = TdfFitter(bucket_width=10.0)
        self._window_start = scenario.now
        self._last_reading_seen = 0
        # Pending tdf probes: (probe time, person_id, rect).
        self._probes: List[Tuple[float, str, Rect, float]] = []
        # In-range status at the previous window boundary, per person:
        # trials only count when the status is stable across the whole
        # window, so boundary-crossers do not contaminate estimates.
        self._was_in_range: Dict[str, bool] = {}

    # ------------------------------------------------------------------

    def _station_center(self) -> Point:
        return self.station.adapter._canonical_point(
            self.station.adapter.station_position)

    def _in_range(self, position: Point) -> bool:
        return (self._station_center().distance_to(position)
                <= self.station.adapter.range_ft)

    def _readings_in_window(self, t0: float, t1: float) -> Dict[str, int]:
        rows = self.scenario.db.sensor_readings.select(
            lambda row: row["sensor_id"] == self.station.adapter.adapter_id
            and t0 < row["detection_time"] <= t1)
        counts: Dict[str, int] = {}
        for row in rows:
            counts[row["mobile_object_id"]] = \
                counts.get(row["mobile_object_id"], 0) + 1
        return counts

    def _close_window(self, now: float) -> None:
        detected = self._readings_in_window(self._window_start, now)
        for person in self.scenario.people:
            heard = person.person_id in detected
            in_range_now = self._in_range(person.position)
            stable = (self._was_in_range.get(person.person_id)
                      == in_range_now)
            self._was_in_range[person.person_id] = in_range_now
            if not stable:
                continue  # crossed the coverage boundary mid-window
            if in_range_now:
                self.carry.record_presence_trial(heard)
                if person.carrying_badge:
                    self.detection.record_device_present_trial(heard)
            else:
                self.misident.record_absence_trial(heard)
        self._window_start = now

    def _schedule_tdf_probes(self) -> None:
        rows = self.scenario.db.sensor_readings.select(
            lambda row: row["sensor_id"]
            == self.station.adapter.adapter_id)
        for row in rows[self._last_reading_seen:]:
            for age in self.tdf_probe_ages:
                self._probes.append((
                    row["detection_time"] + age,
                    row["mobile_object_id"],
                    row["rect"],
                    age,
                ))
        self._last_reading_seen = len(rows)

    def _fire_due_probes(self, now: float) -> None:
        remaining: List[Tuple[float, str, Rect, float]] = []
        for due, person_id, rect, age in self._probes:
            if due > now:
                remaining.append((due, person_id, rect, age))
                continue
            try:
                person = self.scenario.movement.person(person_id)
            except SimulationError:
                continue
            self.tdf.record(age, rect.contains_point(person.position))
        self._probes = remaining

    # ------------------------------------------------------------------

    def run(self, seconds: float, dt: float = 1.0) -> None:
        """Run the scenario while collecting study observations."""
        elapsed = 0.0
        while elapsed < seconds:
            now = self.scenario.step(dt)
            self._schedule_tdf_probes()
            self._fire_due_probes(now)
            if now - self._window_start >= self.window:
                self._close_window(now)
            elapsed += dt

    def report(self, fit_tdf: bool = True) -> CalibrationReport:
        """The calibration report for the studied technology."""
        tdf_fit = None
        if fit_tdf and self.tdf.sample_count >= 20:
            try:
                tdf_fit = self.tdf.fit()
            except Exception:  # noqa: BLE001 — sparse data is fine
                tdf_fit = None
        return CalibrationReport(
            sensor_type=self.station.adapter.adapter_type,
            x=self.carry.estimate(),
            y=self.detection.estimate(),
            z=self.misident.estimate(),
            tdf_fit=tdf_fit,
        )
