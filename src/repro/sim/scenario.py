"""End-to-end scenario wiring: world + database + service + simulation.

A :class:`Scenario` assembles the whole MiddleWhere stack over a
simulated building and population, stepping ground truth, sensing and
(optionally) accuracy tracing under one virtual clock.  Examples,
integration tests and benchmarks all start from here.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import FusionEngine
from repro.errors import SimulationError, UnknownObjectError
from repro.model import WorldModel
from repro.orb import NamingService, Orb
from repro.service import (
    LocationService,
    PrivacyPolicy,
    publish_service,
)
from repro.sim.building import siebel_floor
from repro.sim.clock import SimClock
from repro.sim.deployment import Deployment
from repro.sim.movement import MovementModel, PersonState
from repro.sim.trace import AccuracyTrace
from repro.spatialdb import SpatialDatabase


class Scenario:
    """A complete simulated deployment.

    Args:
        world: the building (defaults to :func:`siebel_floor`).
        seed: drives movement and every sensor's RNG.
        engine: fusion engine override.
        orb: attach the service to a broker (examples that exercise the
            remote path pass one; benches open TCP on it).
    """

    def __init__(self, world: Optional[WorldModel] = None, seed: int = 7,
                 engine: Optional[FusionEngine] = None,
                 orb: Optional[Orb] = None,
                 privacy: Optional[PrivacyPolicy] = None) -> None:
        self.world = world if world is not None else siebel_floor()
        self.clock = SimClock()
        self.db = SpatialDatabase(self.world)
        self.movement = MovementModel(self.world, seed=seed)
        self.deployment = Deployment(self.db, seed=seed + 1)
        self.orb = orb
        self.service = LocationService(
            self.db, engine=engine, orb=orb, clock=self.clock,
            privacy=privacy)
        self.trace = AccuracyTrace(self.world)
        self.pipeline = None  # set by use_pipeline()
        self.fault_plan = None  # set by use_pipeline(fault_plan=...)
        self.durability = None  # set by use_durability()
        self.shard_cluster = None  # set by use_shards()
        self.router = None  # set by use_shards()
        self._published_reference: Optional[str] = None

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------

    def standard_deployment(self) -> "Scenario":
        """The paper's deployment shape: four technologies, four rooms.

        "We integrated four different location technologies in the
        system ... the location sensors cover four different rooms,
        that includes a lab, a conference room, and two offices"
        (Section 7).
        """
        prefix = "SC/3"
        covered = [f"{prefix}/3105", f"{prefix}/ConferenceRoom",
                   f"{prefix}/3102", f"{prefix}/3216"]
        for room in covered:
            if not self.world.has(room):
                raise SimulationError(
                    f"standard deployment expects room {room}")
        self.deployment.install_ubisense("Ubi-18", f"{prefix}/3105")
        self.deployment.install_ubisense("Ubi-19",
                                         f"{prefix}/ConferenceRoom")
        self.deployment.install_rf_station("RF-12", f"{prefix}/3102")
        self.deployment.install_rf_station("RF-13", f"{prefix}/3216")
        self.deployment.install_rf_station("RF-14", f"{prefix}/Corridor")
        self.deployment.install_card_reader("Card-3105", f"{prefix}/3105")
        self.deployment.install_card_reader("Card-NetLab",
                                            f"{prefix}/NetLab")
        self.deployment.install_fingerprint("Finger-3105",
                                            f"{prefix}/3105")
        return self

    def add_people(self, count: int, prefix: str = "person") -> List[str]:
        """Add ``count`` randomly placed people; returns their ids."""
        ids = []
        for i in range(count):
            person_id = f"{prefix}-{i + 1}"
            self.movement.add_person(person_id)
            ids.append(person_id)
        return ids

    def use_pipeline(self, workers: int = 2, config=None, channel=None,
                     fault_plan=None):
        """Route every deployed adapter through an ingestion pipeline.

        Readings stop hitting the spatial database synchronously:
        adapters emit into the returned (already started)
        :class:`repro.pipeline.LocationPipeline`, whose workers batch,
        fuse and notify.  Call ``pipeline.drain()`` before querying if
        you need every emitted reading visible.  Adapters installed
        *after* this call must be wired with ``adapter.set_sink``.

        With ``fault_plan`` (a :class:`repro.faults.FaultPlan`), every
        adapter emits through the plan's fault-injecting sink instead,
        the plan's flush injectors are installed into the pipeline, and
        :meth:`step` pumps the plan so delayed readings are released on
        the scenario clock.  Call ``fault_plan.flush()`` before
        draining so held readings are force-released.
        """
        from repro.pipeline import LocationPipeline, PipelineConfig
        if config is None:
            config = PipelineConfig(workers=workers)
        self.pipeline = LocationPipeline(self.service, config=config,
                                         channel=channel)
        sink = self.pipeline
        if fault_plan is not None:
            sink = fault_plan.wrap_sink(self.pipeline)
            fault_plan.attach_pipeline(self.pipeline)
            self.fault_plan = fault_plan
        for adapter in self.deployment.adapters():
            adapter.set_sink(sink)
        if (self.durability is not None and fault_plan is not None):
            self.durability.attach_fault_plan(fault_plan)
        self.pipeline.start()
        return self.pipeline

    def use_shards(self, num_shards: int, *, wal_root: Optional[str] = None,
                   durability_mode: str = "buffered", pipeline=None,
                   fusion_cache_capacity: int = 32,
                   region_affinity=None, batch_size: int = 32):
        """Scale the scenario out across shard processes.

        Spawns a :class:`repro.shard.ShardCluster` (each shard a full
        engine in its own process, reachable over the ORB's TCP
        transport), replays the deployment's sensor registrations to
        the fleet, and points every installed adapter's sink at the
        cluster's :class:`~repro.shard.ShardRouter`.  From then on the
        scenario's *ingest* runs sharded while ``self.service`` stays
        available as the single-process reference.  Call
        ``router.drain()`` before querying the fleet; call
        ``scenario.shard_cluster.shutdown()`` when done.  Returns the
        router.  Mutually exclusive with :meth:`use_pipeline` — the
        shards run their own pipelines.
        """
        from repro.shard import ShardCluster
        if self.pipeline is not None:
            raise SimulationError(
                "use_shards and use_pipeline are mutually exclusive: "
                "each shard runs its own ingestion pipeline")
        if self.shard_cluster is not None:
            raise SimulationError("scenario already sharded")
        self.shard_cluster = ShardCluster(
            num_shards, world=self.world, wal_root=wal_root,
            durability_mode=durability_mode, pipeline=pipeline,
            fusion_cache_capacity=fusion_cache_capacity,
            region_affinity=region_affinity, batch_size=batch_size)
        router = self.shard_cluster.router
        for row in self.db.sensor_specs.select():
            router.register_sensor(
                row["sensor_id"], row["sensor_type"], row["confidence"],
                row["time_to_live"], row["spec"])
        for adapter in self.deployment.adapters():
            adapter.set_sink(router)
        self.router = router
        return router

    def subscribe_semantic(self, rule: str, consumer=None,
                           kind: str = "both") -> str:
        """Subscribe to a semantic rule over fused-location facts.

        Routes to the shard router's merged semantic engine when the
        scenario is sharded, otherwise to the single-process service.
        Dwell windows are measured against the scenario's sim clock.
        """
        if self.router is not None:
            return self.router.subscribe_semantic(
                rule, consumer=consumer, kind=kind, now=self.clock.now())
        return self.service.subscribe_semantic(
            rule, consumer=consumer, kind=kind, now=self.clock.now())

    def use_durability(self, wal_dir: str, mode=None,
                       snapshot_interval: Optional[int] = None):
        """Make the scenario's database durable (WAL + snapshots).

        Attaches a :class:`repro.storage.DurabilityManager` journaling
        every mutation into ``wal_dir``; after a crash,
        :func:`repro.storage.recover` rebuilds a fingerprint-identical
        database from that directory.  Call before registering sensors
        or subscribing so those mutations are journaled too.  When a
        ``fault_plan`` is later passed to :meth:`use_pipeline`, its WAL
        kill points are installed automatically.  Returns the manager.
        """
        from repro.storage import DurabilityManager, DurabilityMode
        if mode is None:
            mode = DurabilityMode.BUFFERED
        elif isinstance(mode, str):
            mode = DurabilityMode(mode)
        self.durability = DurabilityManager(
            self.db, wal_dir, mode=mode,
            snapshot_interval=snapshot_interval).attach()
        if self.fault_plan is not None:
            self.durability.attach_fault_plan(self.fault_plan)
        return self.durability

    def publish(self, naming: Optional[NamingService] = None,
                listen_tcp: bool = False) -> str:
        """Expose the service on the scenario's ORB; returns the ref."""
        if self.orb is None:
            self.orb = Orb("scenario")
            self.service.orb = self.orb
        if listen_tcp:
            self.orb.listen()
        reference, _ = publish_service(self.service, self.orb, naming)
        self._published_reference = reference
        return reference

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now()

    @property
    def people(self) -> List[PersonState]:
        return self.movement.people

    def step(self, dt: float = 1.0) -> float:
        """One tick: advance clock, move people, run sensors."""
        now = self.clock.advance(dt)
        self.movement.step(now, dt)
        self.deployment.sense(self.movement.people, now)
        if self.fault_plan is not None:
            self.fault_plan.pump(now)
        return now

    def run(self, seconds: float, dt: float = 1.0,
            trace_accuracy: bool = False) -> None:
        """Run the scenario for a stretch of virtual time."""
        elapsed = 0.0
        while elapsed < seconds:
            self.step(dt)
            if trace_accuracy:
                self._record_trace()
            elapsed += dt

    def _record_trace(self) -> None:
        for person in self.movement.people:
            try:
                estimate = self.service.locate(person.person_id)
            except UnknownObjectError:
                self.trace.record_miss(person, self.now)
                continue
            self.trace.record(person, estimate, self.now)
