"""A virtual clock for deterministic simulation.

Sensor freshness, temporal degradation and trigger timing all consume
time through the Location Service's injected clock; driving them from
a :class:`SimClock` makes whole scenarios reproducible and lets tests
fast-forward through 15-minute biometric TTLs instantly.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A manually advanced clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def __call__(self) -> float:
        """Clock protocol for :class:`~repro.service.LocationService`."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0.0:
            raise SimulationError(f"cannot advance by {seconds} s")
        self._now += seconds
        return self._now

    def set_time(self, timestamp: float) -> None:
        """Jump to an absolute time (forward only)."""
        if timestamp < self._now:
            raise SimulationError(
                f"clock cannot go backwards ({timestamp} < {self._now})")
        self._now = float(timestamp)
