"""Building construction: the paper's floor and synthetic generators.

Three builders:

* :func:`paper_floor` — the floor of the paper's Table 1 / Figure 8
  (CS Floor3 with rooms 3105, NetLab, HCILab and the LabCorridor),
  plus the connecting corridor and doors needed for navigation.
* :func:`siebel_floor` — a richer Siebel-Center-style floor with the
  rooms named throughout the paper (3102, 3105, 3216, labs, a
  conference room), per-room coordinate frames, static objects
  (displays, workstations) and restricted doors.
* :func:`generate_office_floor` — a parametric floor for scaling
  benchmarks.

All dimensions are feet, matching the paper's sensor calibrations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.geometry import Point, Polygon, Rect, Segment
from repro.model import (
    Door,
    Entity,
    EntityType,
    FrameTransform,
    Glob,
    PassageKind,
    WorldModel,
)


def _rect_polygon(min_x: float, min_y: float,
                  max_x: float, max_y: float) -> Polygon:
    return Polygon.from_rect(Rect(min_x, min_y, max_x, max_y))


def _add_room(world: WorldModel, glob: str, bounds: Tuple[float, float,
                                                          float, float],
              entity_type: EntityType = EntityType.ROOM,
              frame: str = "", **properties: object) -> None:
    world.add_region(Glob.parse(glob), entity_type,
                     _rect_polygon(*bounds), frame, **properties)


def _add_door(world: WorldModel, glob: str, region_a: str, region_b: str,
              sill: Segment, kind: PassageKind = PassageKind.FREE,
              frame: str = "") -> None:
    world.add_door(Door(
        glob=Glob.parse(glob),
        region_a=Glob.parse(region_a),
        region_b=Glob.parse(region_b),
        sill=sill,
        frame=frame,
        kind=kind,
    ))


# ----------------------------------------------------------------------
# The paper's Table-1 floor
# ----------------------------------------------------------------------

# Rows exactly as printed in Table 1 (HCILab's points are missing in
# the paper; we place it continuing the row of lab rooms).  The floor
# outline as printed — (0,0), (0,500), (500,100), (0,100) — is a typo;
# the obviously intended 500 x 100 floor is used.
PAPER_FLOOR_GLOB = "CS/Floor3"
PAPER_FLOOR_BOUNDS = (0.0, 0.0, 500.0, 100.0)
PAPER_ROOMS = {
    "3105": (330.0, 0.0, 350.0, 30.0),
    "NetLab": (360.0, 0.0, 380.0, 30.0),
    "HCILab": (385.0, 0.0, 405.0, 30.0),
}
PAPER_LAB_CORRIDOR = (310.0, 0.0, 330.0, 30.0)
# A main corridor above the room row so every room is reachable.
PAPER_MAIN_CORRIDOR = (300.0, 30.0, 420.0, 50.0)


def paper_floor() -> WorldModel:
    """The CS Floor3 world of Table 1, navigable.

    Every Table-1 region is present with the printed coordinates; a
    main corridor and doors (restricted into 3105, matching the
    paper's card-swipe rooms) complete the model.
    """
    world = WorldModel()
    world.add_frame("CS", "", FrameTransform())
    world.add_frame(PAPER_FLOOR_GLOB, "CS", FrameTransform())

    _add_room(world, PAPER_FLOOR_GLOB, PAPER_FLOOR_BOUNDS,
              EntityType.FLOOR)
    for name, bounds in PAPER_ROOMS.items():
        _add_room(world, f"{PAPER_FLOOR_GLOB}/{name}", bounds)
    _add_room(world, f"{PAPER_FLOOR_GLOB}/LabCorridor", PAPER_LAB_CORRIDOR,
              EntityType.CORRIDOR)
    _add_room(world, f"{PAPER_FLOOR_GLOB}/Corridor3", PAPER_MAIN_CORRIDOR,
              EntityType.CORRIDOR)

    prefix = PAPER_FLOOR_GLOB
    # Doors from each room/lab-corridor up into the main corridor.
    _add_door(world, f"{prefix}/Door-LabCorridor",
              f"{prefix}/LabCorridor", f"{prefix}/Corridor3",
              Segment(Point(315, 30), Point(325, 30)))
    _add_door(world, f"{prefix}/Door-3105",
              f"{prefix}/3105", f"{prefix}/Corridor3",
              Segment(Point(335, 30), Point(345, 30)),
              kind=PassageKind.RESTRICTED)
    _add_door(world, f"{prefix}/Door-NetLab",
              f"{prefix}/NetLab", f"{prefix}/Corridor3",
              Segment(Point(365, 30), Point(375, 30)))
    _add_door(world, f"{prefix}/Door-HCILab",
              f"{prefix}/HCILab", f"{prefix}/Corridor3",
              Segment(Point(390, 30), Point(400, 30)))
    # The side door between the lab corridor and room 3105 (shared wall).
    _add_door(world, f"{prefix}/Door-Lab-3105",
              f"{prefix}/LabCorridor", f"{prefix}/3105",
              Segment(Point(330, 10), Point(330, 20)),
              kind=PassageKind.RESTRICTED)
    return world


# ----------------------------------------------------------------------
# The Siebel-style deployment floor
# ----------------------------------------------------------------------

SIEBEL_PREFIX = "SC/3"

# (name, bounds, type, restricted-door?, properties)
_SIEBEL_SOUTH_ROOMS: List[Tuple[str, Tuple[float, float, float, float],
                                bool]] = [
    ("3102", (20.0, 0.0, 80.0, 40.0), False),
    ("3104", (80.0, 0.0, 140.0, 40.0), False),
    ("3105", (140.0, 0.0, 200.0, 40.0), True),   # the card-swipe lab
    ("NetLab", (200.0, 0.0, 260.0, 40.0), True),
    ("HCILab", (260.0, 0.0, 320.0, 40.0), False),
    ("3110", (320.0, 0.0, 380.0, 40.0), False),
]
_SIEBEL_NORTH_ROOMS: List[Tuple[str, Tuple[float, float, float, float],
                                bool]] = [
    ("3216", (20.0, 60.0, 80.0, 100.0), False),
    ("3218", (80.0, 60.0, 140.0, 100.0), False),
    ("ConferenceRoom", (140.0, 60.0, 240.0, 100.0), False),
    ("3224", (240.0, 60.0, 300.0, 100.0), False),
    ("3226", (300.0, 60.0, 380.0, 100.0), False),
]
_SIEBEL_CORRIDOR = (0.0, 40.0, 400.0, 60.0)


def siebel_floor() -> WorldModel:
    """A 400 x 100 ft floor modelled on the paper's deployment.

    * per-room coordinate frames (each room's origin at its south-west
      corner), exercising the hierarchical coordinate model;
    * wall-mounted displays and workstations with usage regions, for
      the Follow Me / messaging applications;
    * restricted doors on 3105 and the NetLab (the card-swipe rooms).
    """
    world = WorldModel()
    world.add_frame("SC", "", FrameTransform())
    world.add_frame(SIEBEL_PREFIX, "SC", FrameTransform())

    _add_room(world, SIEBEL_PREFIX, (0.0, 0.0, 400.0, 100.0),
              EntityType.FLOOR)
    _add_room(world, f"{SIEBEL_PREFIX}/Corridor", _SIEBEL_CORRIDOR,
              EntityType.CORRIDOR)

    for name, bounds, restricted in (_SIEBEL_SOUTH_ROOMS
                                     + _SIEBEL_NORTH_ROOMS):
        glob = f"{SIEBEL_PREFIX}/{name}"
        _add_room(world, glob, bounds,
                  power_outlets=True)
        # Each room gets its own frame anchored at its SW corner.
        world.add_frame(glob, SIEBEL_PREFIX,
                        FrameTransform(dx=bounds[0], dy=bounds[1]))
        mid_x = (bounds[0] + bounds[2]) / 2.0
        door_y = 40.0 if bounds[1] == 0.0 else 60.0
        _add_door(
            world, f"{glob}-door", glob, f"{SIEBEL_PREFIX}/Corridor",
            Segment(Point(mid_x - 2.0, door_y), Point(mid_x + 2.0, door_y)),
            kind=PassageKind.RESTRICTED if restricted else PassageKind.FREE,
        )

    # Static objects: displays and workstations (canonical coordinates),
    # each with a usage region for the Follow Me application.
    _add_static(world, f"{SIEBEL_PREFIX}/3216/display1",
                EntityType.DISPLAY, Rect(22.0, 96.0, 30.0, 98.0),
                usage_region=Rect(20.0, 88.0, 34.0, 100.0))
    _add_static(world, f"{SIEBEL_PREFIX}/ConferenceRoom/display1",
                EntityType.DISPLAY, Rect(180.0, 96.0, 200.0, 98.0),
                usage_region=Rect(170.0, 80.0, 210.0, 100.0))
    _add_static(world, f"{SIEBEL_PREFIX}/3105/workstation1",
                EntityType.WORKSTATION, Rect(144.0, 2.0, 148.0, 6.0),
                usage_region=Rect(141.0, 0.0, 151.0, 9.0))
    _add_static(world, f"{SIEBEL_PREFIX}/3102/workstation1",
                EntityType.WORKSTATION, Rect(24.0, 2.0, 28.0, 6.0),
                usage_region=Rect(21.0, 0.0, 31.0, 9.0))
    _add_static(world, f"{SIEBEL_PREFIX}/HCILab/display1",
                EntityType.DISPLAY, Rect(286.0, 2.0, 294.0, 4.0),
                usage_region=Rect(280.0, 0.0, 300.0, 12.0))
    return world


def _add_static(world: WorldModel, glob: str, entity_type: EntityType,
                bounds: Rect, usage_region: Optional[Rect] = None) -> None:
    properties: dict = {}
    if usage_region is not None:
        properties["usage_region"] = usage_region
    world.add_entity(Entity(
        glob=Glob.parse(glob),
        entity_type=entity_type,
        geometry=Polygon.from_rect(bounds),
        frame="",
        properties=properties,
    ))


# ----------------------------------------------------------------------
# A two-floor building (the hierarchical model at full depth)
# ----------------------------------------------------------------------

def siebel_building() -> WorldModel:
    """The Siebel deployment floor plus a second floor and a stairwell.

    "Indoor locations consist of buildings, floors and rooms"
    (Section 3) — this world uses all three levels.  The canonical
    plane hosts the floors side by side (floor 3 at y in [0, 100],
    floor 2 at y in [150, 250]); each floor's frame carries its real
    ``dz`` so heights survive in coordinates, and the GLOB hierarchy
    (``SC/2/...`` vs ``SC/3/...``) carries the semantics.  A stairwell
    room on each floor, joined by a door, makes the building one
    navigable graph.
    """
    world = siebel_floor()  # provides SC and SC/3 with all its rooms

    # Floor 2: offset in the canonical plane, 12 ft below in z.
    world.add_frame("SC/2", "SC", FrameTransform(dy=150.0, dz=-12.0))
    _add_room(world, "SC/2", (0.0, 0.0, 400.0, 100.0),
              EntityType.FLOOR, frame="SC/2")
    _add_room(world, "SC/2/Corridor", (0.0, 40.0, 400.0, 60.0),
              EntityType.CORRIDOR, frame="SC/2")
    floor2_rooms = [
        ("2102", (20.0, 0.0, 100.0, 40.0)),
        ("2105", (100.0, 0.0, 180.0, 40.0)),
        ("2216", (20.0, 60.0, 100.0, 100.0)),
        ("Cafe", (180.0, 60.0, 300.0, 100.0)),
    ]
    for name, bounds in floor2_rooms:
        glob = f"SC/2/{name}"
        _add_room(world, glob, bounds, frame="SC/2")
        mid_x = (bounds[0] + bounds[2]) / 2.0
        door_y = 40.0 if bounds[1] == 0.0 else 60.0
        _add_door(world, f"{glob}-door", glob, "SC/2/Corridor",
                  Segment(Point(mid_x - 2.0, door_y),
                          Point(mid_x + 2.0, door_y)), frame="SC/2")

    # Stairwells: one room per floor, joined by a door.  The sill is
    # placed midway between the two stair rooms in the canonical plane
    # so path distances include a realistic inter-floor cost.
    _add_room(world, "SC/3/Stairs", (380.0, 40.0, 400.0, 60.0),
              EntityType.ROOM, frame="SC/3")
    _add_door(world, "SC/3/Stairs-door", "SC/3/Stairs", "SC/3/Corridor",
              Segment(Point(380.0, 48.0), Point(380.0, 52.0)),
              frame="SC/3")
    _add_room(world, "SC/2/Stairs", (380.0, 40.0, 400.0, 60.0),
              EntityType.ROOM, frame="SC/2")
    _add_door(world, "SC/2/Stairs-door", "SC/2/Stairs", "SC/2/Corridor",
              Segment(Point(380.0, 48.0), Point(380.0, 52.0)),
              frame="SC/2")
    # Canonical stair centers: (390, 50) and (390, 200); the flight's
    # sill sits midway.
    _add_door(world, "SC/Stair-flight", "SC/3/Stairs", "SC/2/Stairs",
              Segment(Point(388.0, 125.0), Point(392.0, 125.0)),
              frame="")
    return world


# ----------------------------------------------------------------------
# A campus: outdoors + a building (the paper's outdoor extension)
# ----------------------------------------------------------------------

def campus_world() -> WorldModel:
    """A small campus: an outdoor quad containing one building.

    "Outdoor environments can be hierarchically divided ... In this
    paper, we focus on indoor environments, though the middleware can
    be extended to outdoor environments as well" (Section 3).  This
    world exercises that extension: GPS covers the quad, indoor
    technologies cover the building, and a free entrance joins them.

    Layout (feet, canonical frame):
      * the quad: 600 x 400 outdoor region;
      * building SC at (200, 150)-(440, 250) with a ground floor of
        two rooms and a lobby;
      * the entrance door on the building's south wall.
    """
    world = WorldModel()
    world.add_frame("Campus", "", FrameTransform())
    world.add_frame("SC", "Campus", FrameTransform(dx=200.0, dy=150.0))
    world.add_frame("SC/1", "SC", FrameTransform())

    _add_room(world, "Campus", (0.0, 0.0, 600.0, 400.0),
              EntityType.REGION)
    # The quad is a hair inside the campus bounds so point-to-symbolic
    # resolution prefers it over the all-enclosing campus region.
    _add_room(world, "Campus/Quad", (1.0, 1.0, 599.0, 399.0),
              EntityType.REGION, outdoors=True)
    # Building footprint and floor, expressed in the building frame.
    _add_room(world, "SC/1", (0.0, 0.0, 240.0, 100.0),
              EntityType.FLOOR, frame="SC")
    _add_room(world, "SC/1/Lobby", (90.0, 0.0, 150.0, 100.0),
              EntityType.ROOM, frame="SC")
    _add_room(world, "SC/1/WestWing", (0.0, 0.0, 90.0, 100.0),
              EntityType.ROOM, frame="SC")
    _add_room(world, "SC/1/EastWing", (150.0, 0.0, 240.0, 100.0),
              EntityType.ROOM, frame="SC")

    # Entrance: quad <-> lobby, on the building's south wall.
    _add_door(world, "SC/1/Entrance", "Campus/Quad", "SC/1/Lobby",
              Segment(Point(115.0, 0.0), Point(125.0, 0.0)),
              frame="SC")
    _add_door(world, "SC/1/Door-West", "SC/1/Lobby", "SC/1/WestWing",
              Segment(Point(90.0, 45.0), Point(90.0, 55.0)), frame="SC")
    _add_door(world, "SC/1/Door-East", "SC/1/Lobby", "SC/1/EastWing",
              Segment(Point(150.0, 45.0), Point(150.0, 55.0)),
              frame="SC")
    return world


# ----------------------------------------------------------------------
# Parametric floors for scaling benches
# ----------------------------------------------------------------------

def generate_office_floor(rooms_per_side: int, room_width: float = 20.0,
                          room_depth: float = 30.0,
                          corridor_width: float = 10.0,
                          prefix: str = "GEN/1") -> WorldModel:
    """A double-loaded corridor floor with ``2 * rooms_per_side`` rooms.

    Rooms line both sides of a central corridor, every room has a free
    door onto it.  Used by the scaling benchmarks, where floor size
    and room count must vary parametrically.
    """
    if rooms_per_side < 1:
        raise SimulationError("need at least one room per side")
    world = WorldModel()
    parts = prefix.split("/")
    world.add_frame(parts[0], "", FrameTransform())
    for i in range(1, len(parts)):
        world.add_frame("/".join(parts[: i + 1]), "/".join(parts[:i]),
                        FrameTransform())

    total_width = rooms_per_side * room_width
    total_depth = 2.0 * room_depth + corridor_width
    _add_room(world, prefix, (0.0, 0.0, total_width, total_depth),
              EntityType.FLOOR)
    corridor_glob = f"{prefix}/Corridor"
    _add_room(world, corridor_glob,
              (0.0, room_depth, total_width, room_depth + corridor_width),
              EntityType.CORRIDOR)

    for side, y0, door_y in (("S", 0.0, room_depth),
                             ("N", room_depth + corridor_width,
                              room_depth + corridor_width)):
        for i in range(rooms_per_side):
            x0 = i * room_width
            glob = f"{prefix}/{side}{i + 1:03d}"
            _add_room(world, glob, (x0, y0, x0 + room_width,
                                    y0 + room_depth))
            mid = x0 + room_width / 2.0
            _add_door(world, f"{glob}-door", glob, corridor_glob,
                      Segment(Point(mid - 1.5, door_y),
                              Point(mid + 1.5, door_y)))
    return world
